package objstore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"aurora/internal/codec"
	"aurora/internal/storage"
)

// This file persists the store's index so a store survives restart:
// Sync serializes every map to a fresh extent and publishes it through
// a double-buffered superblock; Open replays that extent. Data blocks
// themselves are already on the device — the index is the only
// volatile state.
//
// Crash consistency: two superblock slots alternate by generation
// parity, each carrying a generation counter, the index extent
// location, a CRC of the index bytes, and a CRC of the header itself.
// Sync's durability barrier protocol is
//
//	write index extent → Device.Sync → write alternate slot → Device.Sync
//
// so at every instant one slot holds a fully durable generation. A
// torn index or superblock write leaves the previous slot untouched
// and Open falls back to it.

// castagnoli is the CRC-32C table used for superblock and index
// checksums (the same polynomial real storage stacks use).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// superblock is the decoded form of one slot.
type superblock struct {
	gen     uint64
	idxOff  int64
	idxLen  int64
	idxCRC  uint32
	fenceHW uint64 // highest fencing generation across lineages
}

// Slot layout (64 bytes):
//
//	[0:4)   magic
//	[4:8)   version
//	[8:16)  generation
//	[16:24) index offset
//	[24:32) index length
//	[32:36) index CRC-32C
//	[36:44) fencing-generation high-water
//	[44:60) reserved (zero)
//	[60:64) header CRC-32C over bytes [0:60)
func encodeSuperblock(sb superblock) []byte {
	buf := make([]byte, sbSize)
	binary.LittleEndian.PutUint32(buf[0:], magic)
	binary.LittleEndian.PutUint32(buf[4:], sbVersion)
	binary.LittleEndian.PutUint64(buf[8:], sb.gen)
	binary.LittleEndian.PutUint64(buf[16:], uint64(sb.idxOff))
	binary.LittleEndian.PutUint64(buf[24:], uint64(sb.idxLen))
	binary.LittleEndian.PutUint32(buf[32:], sb.idxCRC)
	binary.LittleEndian.PutUint64(buf[36:], sb.fenceHW)
	binary.LittleEndian.PutUint32(buf[60:], crc32.Checksum(buf[:60], castagnoli))
	return buf
}

// decodeSuperblock validates one slot's header; ok is false for any
// torn, stale-layout, or foreign contents.
func decodeSuperblock(buf []byte) (superblock, bool) {
	if len(buf) < sbSize {
		return superblock{}, false
	}
	if binary.LittleEndian.Uint32(buf[0:]) != magic {
		return superblock{}, false
	}
	if binary.LittleEndian.Uint32(buf[4:]) != sbVersion {
		return superblock{}, false
	}
	if binary.LittleEndian.Uint32(buf[60:]) != crc32.Checksum(buf[:60], castagnoli) {
		return superblock{}, false
	}
	return superblock{
		gen:     binary.LittleEndian.Uint64(buf[8:]),
		idxOff:  int64(binary.LittleEndian.Uint64(buf[16:])),
		idxLen:  int64(binary.LittleEndian.Uint64(buf[24:])),
		idxCRC:  binary.LittleEndian.Uint32(buf[32:]),
		fenceHW: binary.LittleEndian.Uint64(buf[36:]),
	}, true
}

func slotOffset(gen uint64) int64 {
	if gen%2 == 1 {
		return sbSlot1
	}
	return sbSlot0
}

// Sync writes the index to the device and publishes it as the next
// superblock generation.
func (s *Store) Sync() error {
	s.syncMu.Lock()
	defer s.syncMu.Unlock()

	s.mu.Lock()
	e := codec.NewEncoder()
	// Allocation state.
	e.I64(s.nextOff)
	e.U64(uint64(len(s.freeList)))
	for _, off := range s.freeList {
		e.I64(off)
	}
	// Block index.
	e.U64(uint64(len(s.blocks)))
	for h, be := range s.blocks {
		e.Bytes2(h[:])
		e.I64(be.ref.Off)
		e.I64(int64(be.refs))
	}
	// Records.
	e.U64(uint64(len(s.records)))
	for key, rec := range s.records {
		e.U64(key.Group)
		e.U64(key.OID)
		e.U64(key.Epoch)
		e.U64(uint64(rec.Kind))
		e.Bool(rec.Full)
		e.Bytes2(rec.Meta)
		e.I64(rec.metaOff)
		e.I64(int64(rec.metaLen))
		e.U64(uint64(len(rec.Pages)))
		for idx, ref := range rec.Pages {
			e.I64(idx)
			e.I64(ref.Off)
			e.Bytes2(ref.Hash[:])
		}
		e.U64(uint64(len(rec.Heat)))
		for idx, h := range rec.Heat {
			e.I64(idx)
			e.U32(h)
		}
	}
	// Manifests.
	groups := make([]uint64, 0, len(s.manifests))
	for g := range s.manifests {
		groups = append(groups, g)
	}
	e.U64(uint64(len(groups)))
	for _, g := range groups {
		e.U64(g)
		ms := s.manifests[g]
		e.U64(uint64(len(ms)))
		for _, m := range ms {
			e.U64(m.Epoch)
			e.Str(m.Name)
			e.U64(m.Prev)
			e.U64(uint64(len(m.Records)))
			for _, rk := range m.Records {
				e.U64(rk.Group)
				e.U64(rk.OID)
				e.U64(rk.Epoch)
			}
			e.U64Slice(m.Roots)
		}
	}
	// Quarantined epochs: a poisoned epoch must stay poisoned across
	// remounts or a reboot would happily restore from it again.
	e.U64(uint64(len(s.quarantined)))
	for id, why := range s.quarantined {
		e.U64(id.Group)
		e.U64(id.Epoch)
		e.Str(why)
	}
	// Stats that must survive restart.
	e.I64(s.stats.LogicalBytes)
	e.I64(s.stats.MetaBytes)
	e.I64(s.stats.DedupHits)
	// Fencing table: a promotion this store has witnessed must never
	// be forgotten across a remount, or a stale primary could write
	// again after a reboot.
	e.U64(uint64(len(s.fences)))
	for lineage, fe := range s.fences {
		e.U64(lineage)
		e.U64(fe.gen)
		e.Bool(fe.primary)
	}

	idx := e.Bytes()
	idxOff := s.allocExtent(len(idx))
	gen := s.sbGen + 1
	fenceHW := s.fenceHighLocked()
	s.mu.Unlock()

	// failed frees the unpublished index extent: no superblock points at
	// it (a torn slot write never passes the header CRC), so the space
	// is immediately reusable. Without this every failed Sync on a
	// pressured device would leak an extent and make the pressure worse.
	failed := func(err error) error {
		s.mu.Lock()
		s.freeExtentLocked(idxOff, len(idx))
		s.mu.Unlock()
		return wrapSpace(err)
	}

	// Durability barrier: the index must be stable on media before the
	// superblock that points at it becomes visible, and the superblock
	// must be stable before Sync reports success.
	if _, err := s.dev.WriteAt(idx, idxOff); err != nil {
		return failed(fmt.Errorf("objstore: writing index generation %d: %w", gen, err))
	}
	if _, err := s.dev.Sync(); err != nil {
		return failed(fmt.Errorf("objstore: syncing index generation %d: %w", gen, err))
	}
	sb := encodeSuperblock(superblock{
		gen:     gen,
		idxOff:  idxOff,
		idxLen:  int64(len(idx)),
		idxCRC:  crc32.Checksum(idx, castagnoli),
		fenceHW: fenceHW,
	})
	if _, err := s.dev.WriteAt(sb, slotOffset(gen)); err != nil {
		return failed(fmt.Errorf("objstore: publishing superblock generation %d: %w", gen, err))
	}
	if _, err := s.dev.Sync(); err != nil {
		return failed(fmt.Errorf("objstore: syncing superblock generation %d: %w", gen, err))
	}

	s.mu.Lock()
	if gen > s.sbGen {
		s.sbGen = gen
	}
	// Generation N's slot header just overwrote generation N-2's (slot
	// parity), so N-2's index extent is unreachable by any crash
	// fallback and its space comes back. Generations N and N-1 stay
	// intact: either slot must remain mountable until the next publish.
	s.idxHist = append(s.idxHist, extent{idxOff, len(idx)})
	for len(s.idxHist) > 2 {
		old := s.idxHist[0]
		s.idxHist = s.idxHist[1:]
		s.freeExtentLocked(old.off, old.n)
	}
	s.mu.Unlock()
	return nil
}

// Generation returns the last superblock generation this store
// published (or mounted from).
func (s *Store) Generation() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sbGen
}

// Open mounts an existing store, preferring the newest superblock
// generation whose index is intact and falling back to the alternate
// slot when a crash tore the most recent Sync. ErrBadMagic means no
// slot holds a valid superblock at all.
func Open(dev storage.Device, clock *storage.Clock) (*Store, error) {
	var cands []superblock
	for _, off := range []int64{sbSlot0, sbSlot1} {
		var buf [sbSize]byte
		if _, err := dev.ReadAt(buf[:], off); err != nil {
			continue
		}
		if sb, ok := decodeSuperblock(buf[:]); ok {
			cands = append(cands, sb)
		}
	}
	if len(cands) == 0 {
		return nil, ErrBadMagic
	}
	// Newest generation first.
	if len(cands) == 2 && cands[1].gen > cands[0].gen {
		cands[0], cands[1] = cands[1], cands[0]
	}
	var lastErr error
	for _, sb := range cands {
		idx := make([]byte, sb.idxLen)
		if _, err := dev.ReadAt(idx, sb.idxOff); err != nil {
			lastErr = err
			continue
		}
		if crc32.Checksum(idx, castagnoli) != sb.idxCRC {
			lastErr = fmt.Errorf("objstore: index generation %d fails checksum", sb.gen)
			continue
		}
		s, err := decodeIndex(dev, clock, idx)
		if err != nil {
			lastErr = err
			continue
		}
		s.sbGen = sb.gen
		// Seed the index-extent history so recycling continues across a
		// remount: the alternate slot's (older) extent is freed after
		// the second publish, exactly as if this process had written it.
		for _, c := range cands {
			if c.gen < sb.gen {
				s.idxHist = append(s.idxHist, extent{c.idxOff, int(c.idxLen)})
			}
		}
		s.idxHist = append(s.idxHist, extent{sb.idxOff, int(sb.idxLen)})
		return s, nil
	}
	return nil, fmt.Errorf("objstore: no usable superblock generation: %w", lastErr)
}

// decodeIndex replays one serialized index into a fresh store.
func decodeIndex(dev storage.Device, clock *storage.Clock, idx []byte) (*Store, error) {
	s := Create(dev, clock)
	d := codec.NewDecoder(idx)
	s.nextOff = d.I64()
	nFree := d.U64()
	for i := uint64(0); i < nFree && d.Err() == nil; i++ {
		s.freeList = append(s.freeList, d.I64())
	}
	nBlocks := d.U64()
	for i := uint64(0); i < nBlocks && d.Err() == nil; i++ {
		var h Hash
		copy(h[:], d.Bytes2())
		be := &blockEntry{ref: BlockRef{Off: d.I64(), Hash: h}, refs: int32(d.I64())}
		s.blocks[h] = be
	}
	nRecs := d.U64()
	for i := uint64(0); i < nRecs && d.Err() == nil; i++ {
		key := RecordKey{Group: d.U64(), OID: d.U64(), Epoch: d.U64()}
		rec := &Record{
			Group: key.Group,
			OID:   key.OID,
			Epoch: key.Epoch,
			Kind:  uint16(d.U64()),
			Full:  d.Bool(),
			Meta:  d.Bytes2(),
			Pages: make(map[int64]BlockRef),
		}
		rec.metaOff = d.I64()
		rec.metaLen = int(d.I64())
		nPages := d.U64()
		for j := uint64(0); j < nPages && d.Err() == nil; j++ {
			idxN := d.I64()
			ref := BlockRef{Off: d.I64()}
			copy(ref.Hash[:], d.Bytes2())
			rec.Pages[idxN] = ref
		}
		nHeat := d.U64()
		if nHeat > 0 {
			rec.Heat = make(map[int64]uint32, nHeat)
		}
		for j := uint64(0); j < nHeat && d.Err() == nil; j++ {
			hidx := d.I64()
			rec.Heat[hidx] = d.U32()
		}
		s.records[key] = rec
		if rec.metaLen+1 < BlockSize && rec.metaOff >= dataStart {
			// Rebuild the pack refcounts (not persisted). A pre-packing
			// store's whole-block small extents simply become
			// single-occupant packs: freed the moment their record dies,
			// exactly as before.
			s.packLive[rec.metaOff&^(BlockSize-1)]++
		}
	}
	nGroups := d.U64()
	for i := uint64(0); i < nGroups && d.Err() == nil; i++ {
		g := d.U64()
		nMs := d.U64()
		for j := uint64(0); j < nMs && d.Err() == nil; j++ {
			m := &Manifest{Group: g, Epoch: d.U64(), Name: d.Str(), Prev: d.U64()}
			nRks := d.U64()
			for r := uint64(0); r < nRks && d.Err() == nil; r++ {
				m.Records = append(m.Records, RecordKey{Group: d.U64(), OID: d.U64(), Epoch: d.U64()})
			}
			m.Roots = d.U64Slice()
			s.manifests[g] = append(s.manifests[g], m)
			if m.Name != "" {
				s.named[m.Name] = manifestID{g, m.Epoch}
			}
		}
	}
	nQuar := d.U64()
	for i := uint64(0); i < nQuar && d.Err() == nil; i++ {
		id := manifestID{Group: d.U64(), Epoch: d.U64()}
		s.quarantined[id] = d.Str()
	}
	s.stats.LogicalBytes = d.I64()
	s.stats.MetaBytes = d.I64()
	s.stats.DedupHits = d.I64()
	nFences := d.U64()
	for i := uint64(0); i < nFences && d.Err() == nil; i++ {
		lineage := d.U64()
		s.fences[lineage] = fenceEntry{gen: d.U64(), primary: d.Bool()}
	}
	if err := d.Finish("objstore index"); err != nil {
		return nil, err
	}
	return s, nil
}
