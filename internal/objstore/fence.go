package objstore

import (
	"errors"
	"fmt"
)

// This file implements the store generation fence: the split-brain
// guard behind replica promotion. Every image a group flushes is
// stamped with the group's store generation (a monotonically
// increasing fencing token). A store remembers, per lineage (the
// original group ID of a checkpoint chain), the highest generation it
// has witnessed and whether it believes it is the lineage's primary.
// A flush stamped with an older generation than the fence is rejected:
// the writer is a stale primary that was superseded by a promotion
// while it was dead or partitioned.
//
// The fence table is persisted in the index and its high-water mark
// additionally lives in the superblock header itself, so even a store
// whose index is rolled back to an older superblock generation cannot
// forget that a promotion happened.

// ErrStaleGeneration rejects a flush stamped with a store generation
// older than the fence: the writer was superseded by a promotion.
var ErrStaleGeneration = errors.New("objstore: stale store generation")

// fenceEntry is one lineage's fencing state.
type fenceEntry struct {
	gen     uint64 // highest generation witnessed for the lineage
	primary bool   // this store believes it is the lineage's primary
}

// FenceGen returns the highest store generation this store has
// witnessed for a lineage (0 = never fenced).
func (s *Store) FenceGen(lineage uint64) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fences[lineage].gen
}

// PrimaryGen reports whether this store believes it is the primary
// for a lineage, and at which generation.
func (s *Store) PrimaryGen(lineage uint64) (uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fe := s.fences[lineage]
	return fe.gen, fe.primary
}

// SetPrimary claims the primary role for a lineage at the given
// generation. The claim must not move the fence backwards.
func (s *Store) SetPrimary(lineage, gen uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if fe := s.fences[lineage]; gen < fe.gen {
		return fmt.Errorf("%w: claiming generation %d for lineage %d behind fence %d",
			ErrStaleGeneration, gen, lineage, fe.gen)
	}
	s.fences[lineage] = fenceEntry{gen: gen, primary: true}
	return nil
}

// AdoptFence raises a lineage's fence to gen without claiming the
// primary role. If the fence actually moves forward, any local
// primary claim is dropped: a higher generation means someone else
// was promoted.
func (s *Store) AdoptFence(lineage, gen uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if fe := s.fences[lineage]; gen > fe.gen {
		s.fences[lineage] = fenceEntry{gen: gen, primary: false}
	}
}

// Handoff renounces this store's primary role for a lineage as part
// of a migration handover: the fence rises to gen and any local
// primary claim is dropped in one step, so a restarted source machine
// reading this store back sees itself as a secondary of the new line.
// Unlike AdoptFence — which keeps an existing claim when the fence
// does not actually move — Handoff drops the claim even at an equal
// generation: the handover is explicit, not inferred. It refuses to
// move the fence backwards.
func (s *Store) Handoff(lineage, gen uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if fe := s.fences[lineage]; gen < fe.gen {
		return fmt.Errorf("%w: handing off lineage %d at generation %d behind fence %d",
			ErrStaleGeneration, lineage, gen, fe.gen)
	}
	s.fences[lineage] = fenceEntry{gen: gen, primary: false}
	return nil
}

// CheckGen validates a flush stamped with generation gen against the
// lineage's fence. Stale generations are rejected; a newer generation
// is adopted as the new fence (demoting any local primary claim) —
// that is the catch-up path of a returning stale store receiving
// epochs written by the promoted primary.
func (s *Store) CheckGen(lineage, gen uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	fe := s.fences[lineage]
	switch {
	case gen < fe.gen:
		return fmt.Errorf("%w: flush stamped generation %d for lineage %d behind fence %d",
			ErrStaleGeneration, gen, lineage, fe.gen)
	case gen > fe.gen:
		s.fences[lineage] = fenceEntry{gen: gen, primary: false}
	}
	return nil
}

// PrimaryLineages lists the lineages this store claims the primary
// role for (the chaos harness's exactly-one-primary invariant).
func (s *Store) PrimaryLineages() []uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []uint64
	for l, fe := range s.fences {
		if fe.primary {
			out = append(out, l)
		}
	}
	return out
}

// FenceHighWater returns the highest fencing generation across all
// lineages — the value published in the superblock header.
func (s *Store) FenceHighWater() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fenceHighLocked()
}

func (s *Store) fenceHighLocked() uint64 {
	var hi uint64
	for _, fe := range s.fences {
		if fe.gen > hi {
			hi = fe.gen
		}
	}
	return hi
}
