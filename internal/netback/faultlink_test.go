package netback

import (
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"aurora/internal/core"
	"aurora/internal/storage"
)

// serveRW runs ServeReplica over any transport in the background.
func serveRW(recv *Receiver, conn io.ReadWriter) chan error {
	done := make(chan error, 1)
	go func() {
		_, err := recv.ServeReplica(conn)
		done <- err
	}()
	return done
}

func TestFaultLinkCleanDelivery(t *testing.T) {
	src := newMachine()
	dst := newMachine()
	_, g := spawn(t, src)
	rb := NewReplicaBackend(src.clock)
	src.o.Attach(g, rb)

	link := NewFaultLink(LinkFaultConfig{Seed: 1}, src.clock)
	recv := NewReceiver(dst.k.Mem, dst.clock)
	serveRW(recv, link.B())
	if _, err := rb.Connect(link.A(), g.ID); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		src.k.Run(2)
		if _, err := src.o.Checkpoint(g, core.CheckpointOpts{}); err != nil {
			t.Fatal(err)
		}
	}
	if err := src.o.Sync(g); err != nil {
		t.Fatal(err)
	}
	if img, err := recv.Latest(g.ID); err != nil || img.Epoch != 3 {
		t.Fatalf("replica over clean link: img=%v err=%v", img, err)
	}
	if link.DroppedCount() != 0 || link.InjectedCount() != 0 {
		t.Fatalf("clean link injected faults: dropped=%d injected=%d",
			link.DroppedCount(), link.InjectedCount())
	}
	if link.FrameCount(AtoB) == 0 || link.FrameCount(BtoA) == 0 {
		t.Fatal("link saw no frames")
	}
}

func TestFaultLinkScriptedDropAndResume(t *testing.T) {
	src := newMachine()
	dst := newMachine()
	_, g := spawn(t, src)
	rb := NewReplicaBackend(src.clock)
	src.o.Attach(g, rb)

	link := NewFaultLink(LinkFaultConfig{Seed: 7}, src.clock)
	recv := NewReceiver(dst.k.Mem, dst.clock)
	done := serveRW(recv, link.B())
	if _, err := rb.Connect(link.A(), g.ID); err != nil {
		t.Fatal(err)
	}

	src.k.Run(2)
	if _, err := src.o.Checkpoint(g, core.CheckpointOpts{}); err != nil {
		t.Fatal(err)
	}
	if err := src.o.Sync(g); err != nil {
		t.Fatal(err)
	}

	// Frames so far: hello + delta 1 = 2 in a->b. Drop the next delta.
	link.DropFrames(AtoB, 3, 3)
	src.k.Run(2)
	if _, err := src.o.Checkpoint(g, core.CheckpointOpts{}); err != nil {
		t.Fatal(err)
	}
	err := src.o.Sync(g)
	if !errors.Is(err, ErrDisconnected) {
		t.Fatalf("Sync across dropped frame = %v, want ErrDisconnected", err)
	}
	// The drop also unblocked the serve loop with the loss error.
	if serr := <-done; !errors.Is(serr, ErrLinkDropped) {
		t.Fatalf("serve after drop = %v, want ErrLinkDropped", serr)
	}
	if link.DroppedCount() != 1 {
		t.Fatalf("dropped = %d, want 1", link.DroppedCount())
	}

	// Reconnect over the same link; the handshake resumes at epoch 1
	// and a resync replays the lost epoch.
	serveRW(recv, link.B())
	floor, err := rb.Connect(link.A(), g.ID)
	if err != nil {
		t.Fatal(err)
	}
	if floor != 1 {
		t.Fatalf("resume floor = %d, want 1", floor)
	}
	if err := src.o.Resync(g); err != nil {
		t.Fatal(err)
	}
	if img, err := recv.Latest(g.ID); err != nil || img.Epoch != 2 {
		t.Fatalf("replica after resync: img=%v err=%v", img, err)
	}
	if rb.Partitions() != 1 {
		t.Fatalf("partitions = %d, want 1", rb.Partitions())
	}
}

func TestFaultLinkPartitionHealDegradedNotDown(t *testing.T) {
	src := newMachine()
	dst := newMachine()
	_, g := spawn(t, src)
	rb := NewReplicaBackend(src.clock)
	src.o.Attach(g, rb)

	link := NewFaultLink(LinkFaultConfig{Seed: 42}, src.clock)
	recv := NewReceiver(dst.k.Mem, dst.clock)
	done := serveRW(recv, link.B())
	if _, err := rb.Connect(link.A(), g.ID); err != nil {
		t.Fatal(err)
	}
	src.k.Run(2)
	if _, err := src.o.Checkpoint(g, core.CheckpointOpts{}); err != nil {
		t.Fatal(err)
	}
	if err := src.o.Sync(g); err != nil {
		t.Fatal(err)
	}

	link.PartitionBoth()
	<-done
	if !link.Partitioned() {
		t.Fatal("link not partitioned")
	}
	// Many epochs across the partition: enough consecutive failures to
	// cross the down threshold — a partition-aware backend must stay
	// degraded anyway.
	for i := 0; i < 8; i++ {
		src.k.Run(1)
		if _, err := src.o.Checkpoint(g, core.CheckpointOpts{}); err != nil {
			t.Fatal(err)
		}
		src.o.Sync(g)
	}
	for _, info := range g.Health() {
		if info.Name != "replica" {
			continue
		}
		if info.State != core.BackendDegraded {
			t.Fatalf("partitioned replica state = %v, want degraded", info.State)
		}
		if info.Partitions == 0 {
			t.Fatalf("partition counter not surfaced: %+v", info)
		}
	}
	// The group advanced on local memory only; replication is behind.
	if rep := g.Replicated(); rep != 1 {
		t.Fatalf("replicated frontier during partition = %d, want 1", rep)
	}

	link.Heal()
	serveRW(recv, link.B())
	floor, err := rb.Connect(link.A(), g.ID)
	if err != nil {
		t.Fatal(err)
	}
	if floor != 1 {
		t.Fatalf("post-heal floor = %d, want 1", floor)
	}
	if err := src.o.Resync(g); err != nil {
		t.Fatal(err)
	}
	// Resync replayed the queue; a Sync retries the stalled pipeline
	// epochs (now no-ops) so the durable frontier retires them.
	if err := src.o.Sync(g); err != nil {
		t.Fatalf("sync after heal: %v", err)
	}
	if img, err := recv.Latest(g.ID); err != nil || img.Epoch != 9 {
		t.Fatalf("replica after heal+resync: img=%v err=%v", img, err)
	}
	if rep := g.Replicated(); rep != 9 {
		t.Fatalf("replicated frontier after heal = %d, want 9", rep)
	}
	for _, info := range g.Health() {
		if info.Name == "replica" && (info.State != core.BackendHealthy || info.Pending != 0) {
			t.Fatalf("replica not recovered after heal: %+v", info)
		}
	}
}

func TestFaultLinkCorruptFrame(t *testing.T) {
	src := newMachine()
	dst := newMachine()
	_, g := spawn(t, src)
	rb := NewReplicaBackend(src.clock)
	src.o.Attach(g, rb)

	link := NewFaultLink(LinkFaultConfig{Seed: 3, Corrupt: 1}, src.clock)
	recv := NewReceiver(dst.k.Mem, dst.clock)
	done := serveRW(recv, link.B())
	// The hello itself is corrupted: the receiver sees ErrCorruptFrame
	// and hangs up; the sender observes a failed handshake.
	if _, err := rb.Connect(link.A(), g.ID); err == nil {
		t.Fatal("handshake succeeded over fully corrupting link")
	}
	if serr := <-done; !errors.Is(serr, ErrCorruptFrame) {
		t.Fatalf("serve err = %v, want ErrCorruptFrame", serr)
	}
	if link.InjectedCount() == 0 {
		t.Fatal("no corruption recorded")
	}
}

// TestDuplicatedAcksDoNotAdvanceFloor is the satellite regression for
// the resume handshake under a duplicating, reordering link: every
// frame is delivered twice, so acks and hello acks arrive as stale
// duplicates interleaved with live replies. The sender must never let
// a duplicated ack stand in for the hello ack (or vice versa), and the
// resume floor must equal the deltas the receiver actually holds.
func TestDuplicatedAcksDoNotAdvanceFloor(t *testing.T) {
	src := newMachine()
	dst := newMachine()
	_, g := spawn(t, src)
	rb := NewReplicaBackend(src.clock)
	src.o.Attach(g, rb)

	link := NewFaultLink(LinkFaultConfig{Seed: 11, Dup: 1, Reorder: 0.5}, src.clock)
	recv := NewReceiver(dst.k.Mem, dst.clock)
	serveRW(recv, link.B())
	if _, err := rb.Connect(link.A(), g.ID); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		src.k.Run(2)
		if _, err := src.o.Checkpoint(g, core.CheckpointOpts{}); err != nil {
			t.Fatal(err)
		}
		if err := src.o.Sync(g); err != nil {
			t.Fatalf("sync epoch %d under dup acks: %v", i+1, err)
		}
	}

	// Reconnect with duplicated acks still queued: they must be
	// skipped, and the floor must match the received chain exactly.
	rb.Disconnect()
	floor, err := rb.Connect(link.A(), g.ID)
	if err != nil {
		t.Fatal(err)
	}
	if want := recv.ContiguousEpoch(g.ID); floor != want {
		t.Fatalf("resume floor = %d, receiver contiguous = %d", floor, want)
	}
	if floor != 3 {
		t.Fatalf("floor = %d, want 3 (deltas actually received)", floor)
	}
}

// TestDuplicatedAcksScriptedPeer drives the sender against a
// hand-scripted peer that duplicates every reply, pinning the exact
// skip rules: a second hello ack is not an ack, and a stale ack for an
// earlier epoch is not the awaited one.
func TestDuplicatedAcksScriptedPeer(t *testing.T) {
	rb := NewReplicaBackend(storage.NewClock())
	link := NewFaultLink(LinkFaultConfig{Seed: 5}, nil)
	peer := link.B()

	peerDone := make(chan error, 1)
	go func() {
		peerDone <- func() error {
			// hello -> two hello acks (floor 0).
			typ, payload, err := readFrame(peer)
			if err != nil || typ != frameHello {
				return err
			}
			group := binary.LittleEndian.Uint64(payload)
			var ha [16]byte
			binary.LittleEndian.PutUint64(ha[:8], group)
			for i := 0; i < 2; i++ {
				if err := writeFrame(peer, frameHelloAck, ha[:]); err != nil {
					return err
				}
			}
			// Two deltas, each acked twice.
			for ep := uint64(1); ep <= 2; ep++ {
				typ, _, err := readFrame(peer)
				if err != nil || typ != frameDeltaC {
					return err
				}
				var ack [16]byte
				binary.LittleEndian.PutUint64(ack[:8], group)
				binary.LittleEndian.PutUint64(ack[8:], ep)
				for i := 0; i < 2; i++ {
					if err := writeFrame(peer, frameAck, ack[:]); err != nil {
						return err
					}
				}
			}
			return nil
		}()
	}()

	floor, err := rb.Connect(link.A(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if floor != 0 {
		t.Fatalf("floor = %d, want 0", floor)
	}
	// Flush epoch 1: the duplicate hello ack arrives first and must be
	// skipped; then the real ack, leaving its duplicate queued.
	if _, err := rb.Flush(&core.Image{Group: 1, Epoch: 1, Gen: 1}); err != nil {
		t.Fatalf("flush 1: %v", err)
	}
	// Flush epoch 2: the stale duplicated ack(1) arrives first and
	// must not satisfy the wait for ack(2).
	if _, err := rb.Flush(&core.Image{Group: 1, Epoch: 2, Gen: 1}); err != nil {
		t.Fatalf("flush 2: %v", err)
	}
	if err := <-peerDone; err != nil {
		t.Fatal(err)
	}
}

func TestReplicaFencedFlush(t *testing.T) {
	src := newMachine()
	dst := newMachine()
	_, g := spawn(t, src)
	rb := NewReplicaBackend(src.clock)

	link := NewFaultLink(LinkFaultConfig{Seed: 9}, src.clock)
	recv := NewReceiver(dst.k.Mem, dst.clock)
	serveRW(recv, link.B())
	if _, err := rb.Connect(link.A(), g.ID); err != nil {
		t.Fatal(err)
	}

	// A promotion elsewhere raised the fence to generation 5: this
	// sender's generation-1 deltas are rejected, not acked.
	recv.AdoptFence(g.ID, 5)
	_, err := rb.Flush(&core.Image{Group: g.ID, Epoch: 1, Gen: 1})
	if !errors.Is(err, core.ErrStaleGeneration) {
		t.Fatalf("fenced flush err = %v, want ErrStaleGeneration", err)
	}
	var fe *core.FenceError
	if !errors.As(err, &fe) || fe.Gen != 5 {
		t.Fatalf("fence error detail = %+v", err)
	}
	if _, err := recv.ImageAt(g.ID, 1); err == nil {
		t.Fatal("fenced delta was installed")
	}
	// The connection survives a fencing rejection: a new-generation
	// delta passes.
	if _, err := rb.Flush(&core.Image{Group: g.ID, Epoch: 1, Gen: 5}); err != nil {
		t.Fatalf("new-generation flush after fence: %v", err)
	}
	if recv.FenceGen(g.ID) != 5 {
		t.Fatalf("receiver fence = %d, want 5", recv.FenceGen(g.ID))
	}
}
