package netback

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"aurora/internal/core"
	"aurora/internal/objstore"
	"aurora/internal/storage"
)

// This file implements acknowledged replication: unlike the
// fire-and-forget Backend, a ReplicaBackend waits for a per-delta ack
// from the receiver, so a flush only succeeds once the epoch is safely
// on the standby. A resume handshake (hello / hello-ack carrying the
// receiver's last contiguous epoch) lets a dropped connection
// reconnect and skip epochs the replica already holds; the core health
// machinery replays the rest from the catch-up queue.

// Replica frame types, continuing the base protocol's numbering.
const (
	frameAck      byte = iota + 4 // receiver -> sender: [group u64][epoch u64]
	frameHello                    // sender -> receiver: [group u64]
	frameHelloAck                 // receiver -> sender: [group u64][last contiguous epoch u64]
	frameFenced                   // receiver -> sender: [group u64][fence gen u64][floor epoch u64]
	frameDeltaC                   // sender -> receiver: compact delta (hash refs for pages the receiver holds)
	frameNeed                     // receiver -> sender: [group u64][epoch u64] — refs missing, resend full
	frameHandoff                  // sender -> receiver: [group u64][gen u64][floor u64] — migration handover announcement
	frameHandoffAck               // receiver -> sender: [group u64][gen u64] — fence adopted
)

// ErrDisconnected is wrapped into replica flush errors once the
// connection is gone; callers select on it with errors.Is and
// reconnect with Connect.
var ErrDisconnected = errors.New("netback: replica disconnected")

// ServeReplica consumes an acknowledged replication stream: every
// image or delta applied is acked with its (group, epoch), and a hello
// is answered with the group's last contiguous epoch so the sender can
// resume where it left off. A frame stamped with a store generation
// behind the group's fence (see AdoptFence) is not applied: it is
// answered with a fenced frame carrying the fence generation and the
// replica's contiguous floor, so a stale primary learns it has been
// superseded. It returns the number of frames applied; the error is
// nil on a clean bye or EOF.
func (r *Receiver) ServeReplica(conn io.ReadWriter) (int, error) {
	applied := 0
	for {
		typ, payload, err := readFrame(conn)
		if err != nil {
			if err == io.EOF || errors.Is(err, io.ErrClosedPipe) {
				return applied, nil
			}
			return applied, err
		}
		r.mu.Lock()
		r.recvd += int64(len(payload))
		r.mu.Unlock()
		if r.clock != nil {
			r.clock.Advance(r.nic.Latency + time.Duration(int64(len(payload))*int64(time.Second)/r.nic.ReadBW))
		}
		switch typ {
		case frameBye:
			return applied, nil
		case frameHello:
			if len(payload) != 8 {
				return applied, fmt.Errorf("%w: hello payload %d bytes", ErrBadFrame, len(payload))
			}
			group := binary.LittleEndian.Uint64(payload)
			var ack [16]byte
			binary.LittleEndian.PutUint64(ack[:8], group)
			binary.LittleEndian.PutUint64(ack[8:], r.lastContiguous(group))
			if err := writeFrame(conn, frameHelloAck, ack[:]); err != nil {
				return applied, err
			}
		case frameImage:
			img, err := core.DecodeImage(payload, r.pm)
			if err != nil {
				return applied, err
			}
			if rejected, err := r.fenceCheck(conn, img); err != nil {
				return applied, err
			} else if rejected {
				img.Release(r.pm)
				continue
			}
			r.install(img)
			applied++
			if err := writeAck(conn, img.Group, img.Epoch); err != nil {
				return applied, err
			}
		case frameDelta:
			img, err := core.DecodeDelta(payload, r.pm)
			if err != nil {
				return applied, err
			}
			if rejected, err := r.fenceCheck(conn, img); err != nil {
				return applied, err
			} else if rejected {
				img.Release(r.pm)
				continue
			}
			r.link(img)
			applied++
			if err := writeAck(conn, img.Group, img.Epoch); err != nil {
				return applied, err
			}
		case frameDeltaC:
			img, missing, err := core.DecodeDeltaCompact(payload, r.pm, r.resolveBlock)
			if err != nil {
				return applied, err
			}
			if len(missing) > 0 {
				// The sender's receiver-holds cache was wrong (e.g. this
				// replica restarted empty). Ask for the full delta; the
				// sender prunes its cache and resends literals.
				group, epoch := img.Group, img.Epoch
				img.Release(r.pm)
				r.mu.Lock()
				r.needsSent++
				r.mu.Unlock()
				var p [16]byte
				binary.LittleEndian.PutUint64(p[:8], group)
				binary.LittleEndian.PutUint64(p[8:], epoch)
				if err := writeFrame(conn, frameNeed, p[:]); err != nil {
					return applied, err
				}
				continue
			}
			if rejected, err := r.fenceCheck(conn, img); err != nil {
				return applied, err
			} else if rejected {
				img.Release(r.pm)
				continue
			}
			r.link(img)
			applied++
			if err := writeAck(conn, img.Group, img.Epoch); err != nil {
				return applied, err
			}
		case frameHandoff:
			// Migration handover: the sender is giving us the lineage at
			// a new generation. Adopt the fence — from here any frame
			// stamped below it (a zombie source) is answered fenced —
			// and acknowledge, so the sender knows the fence stands
			// before it flips the primary role.
			if len(payload) != 24 {
				return applied, fmt.Errorf("%w: handoff payload %d bytes", ErrBadFrame, len(payload))
			}
			group := binary.LittleEndian.Uint64(payload[:8])
			gen := binary.LittleEndian.Uint64(payload[8:16])
			r.AdoptFence(group, gen)
			var ack [16]byte
			binary.LittleEndian.PutUint64(ack[:8], group)
			binary.LittleEndian.PutUint64(ack[8:], gen)
			if err := writeFrame(conn, frameHandoffAck, ack[:]); err != nil {
				return applied, err
			}
		default:
			return applied, fmt.Errorf("%w: type %d", ErrBadFrame, typ)
		}
	}
}

func writeAck(w io.Writer, group, epoch uint64) error {
	var p [16]byte
	binary.LittleEndian.PutUint64(p[:8], group)
	binary.LittleEndian.PutUint64(p[8:], epoch)
	return writeFrame(w, frameAck, p[:])
}

// fenceCheck rejects an image stamped with a generation behind the
// group's fence, answering with a fenced frame instead of an ack. The
// unstamped generation 0 only passes while no fence is raised (a
// legacy stream to a replica that never saw a promotion).
func (r *Receiver) fenceCheck(conn io.Writer, img *core.Image) (rejected bool, err error) {
	r.mu.Lock()
	fence := r.fences[img.Group]
	r.mu.Unlock()
	if fence == 0 || img.Gen >= fence {
		return false, nil
	}
	var p [24]byte
	binary.LittleEndian.PutUint64(p[:8], img.Group)
	binary.LittleEndian.PutUint64(p[8:16], fence)
	binary.LittleEndian.PutUint64(p[16:], r.lastContiguous(img.Group))
	return true, writeFrame(conn, frameFenced, p[:])
}

// lastContiguous reports the newest epoch e such that the receiver
// holds every epoch from the start of the group's chain through e. A
// gap (an epoch lost with the connection) stops the walk: resuming
// past it would leave a hole no restore could cross.
func (r *Receiver) lastContiguous(group uint64) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	chain := r.chains[group]
	if len(chain) == 0 {
		return 0
	}
	last := chain[0].Epoch
	for _, img := range chain[1:] {
		if img.Epoch != last+1 {
			break
		}
		last = img.Epoch
	}
	return last
}

// replicaCore is the connection state shared by a ReplicaBackend and
// its lane views. The mutex is held across the send/ack round trip:
// the protocol is synchronous per delta, so concurrent flush workers
// serialize here.
type replicaCore struct {
	mu         sync.Mutex
	conn       io.ReadWriter
	floor      uint64 // receiver's last contiguous epoch at handshake
	sent       int64  // bytes
	partitions int64  // established connections lost
	nic        storage.DeviceParams
	name       string        // link name in a replica set ("" = "replica")
	extraLat   time.Duration // modeled extra one-way latency for this link

	// known caches content hashes of pages believed held by the
	// receiver (populated from acked epochs): compact deltas elide
	// those pages. Purely an optimization — a receiver that lost state
	// answers with a need frame, which resets the cache. Guarded by mu
	// (only touched on the send path). needResends / pagesSent /
	// pagesSkipped are the compact-protocol counters.
	known       map[objstore.Hash]bool
	pagesSent   int64
	pagesSkip   int64
	needResends int64

	// ackMu guards the live acked-epoch ledger below. It is separate
	// from mu — which is held across whole send/ack round trips — so
	// readers (the space reclaimer computing catch-up floors) never
	// stall behind an in-flight delta.
	ackMu   sync.Mutex
	acked   map[uint64]uint64          // group -> contiguous acked frontier
	ackedHi map[uint64]map[uint64]bool // out-of-order acks above the frontier
}

// noteAcked records a receiver ack for (group, epoch), advancing the
// contiguous frontier across any out-of-order acks already seen.
func (rc *replicaCore) noteAcked(group, epoch uint64) {
	rc.ackMu.Lock()
	defer rc.ackMu.Unlock()
	if rc.acked == nil {
		rc.acked = make(map[uint64]uint64)
		rc.ackedHi = make(map[uint64]map[uint64]bool)
	}
	if epoch <= rc.acked[group] {
		return
	}
	hi := rc.ackedHi[group]
	if hi == nil {
		hi = make(map[uint64]bool)
		rc.ackedHi[group] = hi
	}
	hi[epoch] = true
	for hi[rc.acked[group]+1] {
		delete(hi, rc.acked[group]+1)
		rc.acked[group]++
	}
}

// noteFloor folds a handshake floor into the acked ledger: everything
// the receiver reports contiguously held is, by definition, acked.
func (rc *replicaCore) noteFloor(group, floor uint64) {
	rc.ackMu.Lock()
	defer rc.ackMu.Unlock()
	if rc.acked == nil {
		rc.acked = make(map[uint64]uint64)
		rc.ackedHi = make(map[uint64]map[uint64]bool)
	}
	if floor > rc.acked[group] {
		rc.acked[group] = floor
	}
}

// lost drops an established connection, counting the partition.
// Callers hold mu.
func (rc *replicaCore) lost() {
	if rc.conn != nil {
		rc.conn = nil
		rc.partitions++
	}
}

// ReplicaBackend is a core.Backend that replicates every checkpoint to
// a remote receiver and waits for the ack. It is non-ephemeral: an
// acked epoch is durable on the standby, so it counts toward external
// consistency. On connection loss flushes fail with ErrDisconnected,
// the health machinery degrades the backend and queues missed epochs,
// and a Connect + Resync replays them.
type ReplicaBackend struct {
	core  *replicaCore
	clock *storage.Clock
}

// NewReplicaBackend creates a disconnected replica backend charging
// transfer time to clock.
func NewReplicaBackend(clock *storage.Clock) *ReplicaBackend {
	return &ReplicaBackend{
		core:  &replicaCore{nic: storage.ParamsNIC10G},
		clock: clock,
	}
}

// Connect performs the resume handshake over rw for group: it sends a
// hello, reads back the receiver's last contiguous epoch, and records
// it as the floor below which flushes are skipped. It returns that
// epoch so the caller knows where replication resumes. Stray acks and
// fenced frames left in flight by a faulty link (duplicated or
// reordered across the reconnect) are skipped: only the hello ack
// answers a hello, so a stale ack can never set the resume floor.
func (rb *ReplicaBackend) Connect(rw io.ReadWriter, group uint64) (uint64, error) {
	rb.core.mu.Lock()
	defer rb.core.mu.Unlock()
	var hello [8]byte
	binary.LittleEndian.PutUint64(hello[:], group)
	if err := writeFrame(rw, frameHello, hello[:]); err != nil {
		return 0, fmt.Errorf("%w: hello: %w", ErrDisconnected, err)
	}
	for {
		typ, payload, err := readFrame(rw)
		if err != nil {
			return 0, fmt.Errorf("%w: hello ack: %w", ErrDisconnected, err)
		}
		switch {
		case typ == frameAck && len(payload) == 16:
			// A duplicated or delayed ack from before the reconnect.
			continue
		case typ == frameFenced && len(payload) == 24:
			// A stale fenced reply; the fence re-fires on the next
			// flush if it still stands.
			continue
		}
		if typ != frameHelloAck || len(payload) != 16 {
			return 0, fmt.Errorf("%w: expected hello ack, got type %d", ErrBadFrame, typ)
		}
		if got := binary.LittleEndian.Uint64(payload[:8]); got != group {
			return 0, fmt.Errorf("%w: hello ack for group %d, want %d", ErrBadFrame, got, group)
		}
		rb.core.conn = rw
		floor := binary.LittleEndian.Uint64(payload[8:])
		rb.core.ackMu.Lock()
		regressed := floor < rb.core.acked[group]
		rb.core.ackMu.Unlock()
		if regressed {
			// The receiver reports LESS than we recorded acked: it lost
			// state (killed and restarted empty). The ledger and the
			// receiver-holds page cache are stale — reset both so
			// CatchUpFloor tells the truth and compact deltas don't
			// reference pages the far side no longer has.
			rb.core.ackMu.Lock()
			rb.core.acked[group] = 0
			delete(rb.core.ackedHi, group)
			rb.core.ackMu.Unlock()
			rb.core.known = nil
		}
		rb.core.floor = floor
		rb.core.noteFloor(group, floor)
		return floor, nil
	}
}

// Disconnect drops the connection; subsequent flushes fail with
// ErrDisconnected until Connect succeeds again.
func (rb *ReplicaBackend) Disconnect() {
	rb.core.mu.Lock()
	rb.core.lost()
	rb.core.mu.Unlock()
}

// Partitions implements core.PartitionAware: the number of established
// replica connections lost so far. A partitioned replica is degraded,
// never down — its machine still holds every acked epoch.
func (rb *ReplicaBackend) Partitions() int64 {
	rb.core.mu.Lock()
	defer rb.core.mu.Unlock()
	return rb.core.partitions
}

// Floor reports the receiver's last contiguous epoch recorded at the
// most recent handshake.
func (rb *ReplicaBackend) Floor() uint64 {
	rb.core.mu.Lock()
	defer rb.core.mu.Unlock()
	return rb.core.floor
}

// CatchUpFloor implements core.CatchUpFloorer: the first epoch of the
// lineage the replica has NOT contiguously acknowledged — the point
// catch-up replication resumes from. Space reclamation keeps every
// epoch at or above it, so a heal-and-resync (or a promotion on the
// far side) always lands on history the primary still holds. Unlike
// Floor it is live, advancing with every ack, not only at handshakes.
func (rb *ReplicaBackend) CatchUpFloor(group uint64) uint64 {
	rc := rb.core
	rc.ackMu.Lock()
	defer rc.ackMu.Unlock()
	return rc.acked[group] + 1
}

// SentBytes reports bytes placed on the wire.
func (rb *ReplicaBackend) SentBytes() int64 {
	rb.core.mu.Lock()
	defer rb.core.mu.Unlock()
	return rb.core.sent
}

// Name implements core.Backend. Links in a replica set are named
// (SetName) so per-link health rows are tellable apart.
func (rb *ReplicaBackend) Name() string {
	rb.core.mu.Lock()
	defer rb.core.mu.Unlock()
	if rb.core.name != "" {
		return rb.core.name
	}
	return "replica"
}

// SetName names this replica link (shared with lane views).
func (rb *ReplicaBackend) SetName(name string) {
	rb.core.mu.Lock()
	rb.core.name = name
	rb.core.mu.Unlock()
}

// SetLinkLatency adds a modeled one-way latency to every flush on this
// link: replica sets are heterogeneous (a cross-AZ member is slower),
// and quorum durability exists precisely so the slow member does not
// set the pace.
func (rb *ReplicaBackend) SetLinkLatency(d time.Duration) {
	rb.core.mu.Lock()
	rb.core.extraLat = d
	rb.core.mu.Unlock()
}

// AckedFloor reports the receiver's contiguous acked frontier for the
// group (0 = nothing acked): the live per-link value quorum floors
// sort.
func (rb *ReplicaBackend) AckedFloor(group uint64) uint64 {
	rb.core.ackMu.Lock()
	defer rb.core.ackMu.Unlock()
	return rb.core.acked[group]
}

// DeltaStats reports the compact-protocol counters: pages shipped as
// literals, pages elided as hash refs, and full resends forced by a
// need reply (a receiver that lost state).
func (rb *ReplicaBackend) DeltaStats() (sent, skipped, resends int64) {
	rb.core.mu.Lock()
	defer rb.core.mu.Unlock()
	return rb.core.pagesSent, rb.core.pagesSkip, rb.core.needResends
}

// Ephemeral implements core.Backend: an acked replica epoch survives
// the local machine.
func (rb *ReplicaBackend) Ephemeral() bool { return false }

// WithLane implements core.LaneBackend: the view shares the connection
// but charges transfer time to the worker's detached lane.
func (rb *ReplicaBackend) WithLane(lane *storage.Clock) core.Backend {
	return &ReplicaBackend{core: rb.core, clock: lane}
}

// Flush implements core.Backend: send the delta, wait for the
// matching ack. Epochs at or below the handshake floor are already on
// the replica and are skipped. Stale duplicated acks and stray hello
// acks (a faulty link can duplicate or reorder frames) are skipped
// while waiting. A fenced reply — the receiver has adopted a newer
// store generation — returns a core.FenceError wrapping
// core.ErrStaleGeneration without dropping the connection. Any
// transport failure drops the connection and returns an error
// wrapping ErrDisconnected.
func (rb *ReplicaBackend) Flush(img *core.Image) (time.Duration, error) {
	rc := rb.core
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if img.Epoch <= rc.floor {
		return 0, nil
	}
	if rc.conn == nil {
		return 0, fmt.Errorf("%w: epoch %d not sent", ErrDisconnected, img.Epoch)
	}
	payload, hashes, skipped := img.EncodeDeltaCompact(func(h objstore.Hash) bool { return rc.known[h] })
	wire := int64(len(payload))
	resent := false
	if err := writeFrame(rc.conn, frameDeltaC, payload); err != nil {
		rc.lost()
		return 0, fmt.Errorf("%w: sending epoch %d: %w", ErrDisconnected, img.Epoch, err)
	}
	for {
		typ, ack, err := readFrame(rc.conn)
		if err != nil {
			rc.lost()
			return 0, fmt.Errorf("%w: awaiting ack for epoch %d: %w", ErrDisconnected, img.Epoch, err)
		}
		switch {
		case typ == frameHelloAck && len(ack) == 16:
			// A duplicated handshake reply; the floor was already set
			// by Connect, a copy must not be mistaken for an ack.
			continue
		case typ == frameNeed && len(ack) == 16:
			if binary.LittleEndian.Uint64(ack[:8]) != img.Group ||
				binary.LittleEndian.Uint64(ack[8:]) != img.Epoch {
				continue // a stale need from an earlier stream
			}
			// The receiver is missing pages we elided: our cache is
			// stale (it restarted empty). Drop the cache and resend the
			// epoch as a full delta.
			rc.known = nil
			rc.needResends++
			resent = true
			full := img.EncodeDelta()
			wire += int64(len(full))
			if err := writeFrame(rc.conn, frameDelta, full); err != nil {
				rc.lost()
				return 0, fmt.Errorf("%w: resending epoch %d: %w", ErrDisconnected, img.Epoch, err)
			}
			continue
		case typ == frameFenced && len(ack) == 24:
			if group := binary.LittleEndian.Uint64(ack[:8]); group != img.Group {
				continue // fence for another group's stream
			}
			gen := binary.LittleEndian.Uint64(ack[8:16])
			floor := binary.LittleEndian.Uint64(ack[16:])
			return 0, &core.FenceError{Gen: gen, Floor: floor,
				Err: fmt.Errorf("netback: epoch %d of group %d rejected by replica: %w",
					img.Epoch, img.Group, core.ErrStaleGeneration)}
		}
		if typ != frameAck || len(ack) != 16 {
			rc.lost()
			return 0, fmt.Errorf("%w: expected ack, got type %d", ErrBadFrame, typ)
		}
		group := binary.LittleEndian.Uint64(ack[:8])
		epoch := binary.LittleEndian.Uint64(ack[8:])
		if group == img.Group && epoch < img.Epoch {
			// A stale duplicated ack for an earlier epoch: skipping it
			// (rather than trusting it) is what keeps a duplicated ack
			// from ever advancing past the deltas actually received.
			continue
		}
		if group != img.Group || epoch != img.Epoch {
			rc.lost()
			return 0, fmt.Errorf("%w: ack for group %d epoch %d, want %d/%d",
				ErrBadFrame, group, epoch, img.Group, img.Epoch)
		}
		rc.noteAcked(group, epoch)
		break
	}
	rc.sent += wire
	if resent {
		rc.pagesSent += int64(len(hashes))
	} else {
		rc.pagesSent += int64(len(hashes) - skipped)
		rc.pagesSkip += int64(skipped)
	}
	// The acked epoch's pages are now provably on the receiver: future
	// deltas may reference them by hash.
	if rc.known == nil {
		rc.known = make(map[objstore.Hash]bool, len(hashes))
	}
	for _, h := range hashes {
		rc.known[h] = true
	}
	cost := rc.nic.Latency + rc.extraLat + time.Duration(wire*int64(time.Second)/rc.nic.WriteBW)
	if rb.clock != nil {
		rb.clock.Advance(cost)
	}
	return cost, nil
}

// Load implements core.Backend: replica state lives on the remote
// machine and is restored there, not here.
func (rb *ReplicaBackend) Load(group, epoch uint64) (*core.Image, time.Duration, error) {
	return nil, 0, fmt.Errorf("%w: replica backend holds no local images (group %d epoch %d)",
		core.ErrNoImage, group, epoch)
}
