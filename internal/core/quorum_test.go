package core

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// latencyBackend is a non-ephemeral backend with a scripted ack
// latency — the slow replica whose pace quorum durability exists to
// stop setting.
type latencyBackend struct {
	mu  sync.Mutex
	lat time.Duration
	err error
}

func (b *latencyBackend) Name() string    { return "slow" }
func (b *latencyBackend) Ephemeral() bool { return false }
func (b *latencyBackend) Flush(img *Image) (time.Duration, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.lat, b.err
}
func (b *latencyBackend) Load(group, epoch uint64) (*Image, time.Duration, error) {
	return nil, 0, ErrNoImage
}

func TestQuorumNeedAndFloor(t *testing.T) {
	cases := []struct {
		w, nonEph int
		want      int
	}{
		{0, 3, 0}, {1, 3, 1}, {2, 3, 2}, {3, 3, 3},
		{4, 3, 3}, // W clamps down to the attached non-ephemeral count
		{2, 1, 1}, {5, 0, 0},
	}
	for _, c := range cases {
		if got := quorumNeed(c.w, c.nonEph); got != c.want {
			t.Errorf("quorumNeed(%d, %d) = %d, want %d", c.w, c.nonEph, got, c.want)
		}
	}
	floors := []uint64{2, 8, 7}
	if got := quorumFloor(floors, 1); got != 8 {
		t.Errorf("quorumFloor need=1 = %d, want 8", got)
	}
	if got := quorumFloor(floors, 2); got != 7 {
		t.Errorf("quorumFloor need=2 = %d, want 7", got)
	}
	if got := quorumFloor(floors, 3); got != 2 {
		t.Errorf("quorumFloor need=3 = %d, want 2", got)
	}
	if got := quorumFloor(floors, 9); got != 2 {
		t.Errorf("quorumFloor need over len = %d, want min 2", got)
	}
	if floors[0] != 2 || floors[1] != 8 || floors[2] != 7 {
		t.Errorf("quorumFloor mutated its input: %v", floors)
	}
}

// TestQuorumPolicyClamp: SetQuorum normalizes negative W to the legacy
// zero value, and QuorumStatus reports W/N over non-ephemeral backends.
func TestQuorumPolicyClamp(t *testing.T) {
	r := newRig(t)
	p := spawnCounter(t, r)
	g, err := r.o.Persist("app", p)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := g.Quorum(); ok {
		t.Fatal("fresh group reports a quorum policy")
	}
	g.SetQuorum(QuorumPolicy{W: -3})
	if _, ok := g.Quorum(); ok {
		t.Fatal("negative W was not normalized to the legacy zero value")
	}
	g.SetQuorum(QuorumPolicy{W: 2})
	r.o.Attach(g, r.store)
	r.o.Attach(g, &latencyBackend{})
	r.o.Attach(g, r.mem) // ephemeral: must not count toward N
	w, _, n := g.QuorumStatus()
	if w != 2 || n != 2 {
		t.Fatalf("QuorumStatus = W%d N%d, want W2 N2 (ephemeral excluded)", w, n)
	}
}

// TestQuorumLatencyIsWthFastestAck: the modeled durable latency under
// a quorum is the W-th fastest non-ephemeral ack, not the slowest
// backend — attach a 5ms replica next to a microsecond store and the
// W=1 flush stops paying the 5ms.
func TestQuorumLatencyIsWthFastestAck(t *testing.T) {
	r := newRig(t)
	r.o.FlushWorkers = 1
	p := spawnCounter(t, r)
	g, err := r.o.Persist("app", p)
	if err != nil {
		t.Fatal(err)
	}
	slow := &latencyBackend{lat: 5 * time.Millisecond}
	r.o.Attach(g, r.store)
	r.o.Attach(g, slow)

	flushTime := func() time.Duration {
		r.k.Run(2)
		if _, err := r.o.Checkpoint(g, CheckpointOpts{}); err != nil {
			t.Fatal(err)
		}
		if err := r.o.Sync(g); err != nil {
			t.Fatal(err)
		}
		bds := g.Breakdowns()
		return bds[len(bds)-1].FlushTime
	}

	legacy := flushTime() // all-backends: pays the slow replica
	if legacy < slow.lat {
		t.Fatalf("legacy flush %v did not wait for the 5ms backend", legacy)
	}
	g.SetQuorum(QuorumPolicy{W: 1})
	quorum := flushTime() // W=1: the store's ack alone retires the epoch
	if quorum >= slow.lat {
		t.Fatalf("W=1 flush %v still pays the slow backend (legacy %v)", quorum, legacy)
	}
	g.SetQuorum(QuorumPolicy{W: 2})
	full := flushTime() // W=2 of 2: back to waiting for the straggler
	if full < slow.lat {
		t.Fatalf("W=2 flush %v did not wait for both acks", full)
	}
}

// TestReplicatedQuorumFloor: Replicated() under a quorum is the W-th
// highest per-backend contiguous floor — a straggler owing its
// catch-up queue stops dragging the release frontier once W members
// are current. Clearing the policy reverts to the legacy minimum.
func TestReplicatedQuorumFloor(t *testing.T) {
	r := newRig(t)
	r.o.FlushWorkers = 1
	p := spawnCounter(t, r)
	g, err := r.o.Persist("app", p)
	if err != nil {
		t.Fatal(err)
	}
	lb1, lb2 := &ledgerBackend{}, &ledgerBackend{}
	r.o.Attach(g, r.store)
	r.o.Attach(g, lb1)
	r.o.Attach(g, lb2)
	g.SetQuorum(QuorumPolicy{W: 2})

	ckpt := func() {
		r.k.Run(2)
		if _, err := r.o.Checkpoint(g, CheckpointOpts{}); err != nil {
			t.Fatal(err)
		}
		r.o.Drain(g)
	}
	ckpt()
	ckpt()
	if got := g.Replicated(); got != 2 {
		t.Fatalf("healthy Replicated = %d, want 2", got)
	}

	lb2.setErr(errors.New("cable unplugged"))
	ckpt()
	ckpt()
	if d := g.Durable(); d != 4 {
		t.Fatalf("durable = %d, want 4 (quorum of store+lb1 held)", d)
	}
	if got := g.Replicated(); got != 4 {
		t.Fatalf("quorum Replicated = %d, want 4 (lb2's backlog is a minority)", got)
	}
	g.SetQuorum(QuorumPolicy{})
	if got := g.Replicated(); got != 2 {
		t.Fatalf("legacy Replicated = %d, want 2 (minimum floor)", got)
	}

	// Straggler recovers: both rules agree again.
	lb2.setErr(nil)
	if err := r.o.Sync(g); err != nil {
		t.Fatal(err)
	}
	if got := g.Replicated(); got != 4 {
		t.Fatalf("post-heal Replicated = %d, want 4", got)
	}
}

// TestReclaimerQuorumFloorCap is the retention-GC satellite: a
// permanently-down minority's contiguous catch-up floor must not pin
// the group's safety floor forever once a quorum policy is set — the
// reclaimer holds the W-th highest floor instead of the minimum.
func TestReclaimerQuorumFloorCap(t *testing.T) {
	r := newSpaceRig(t, 512<<20, RetentionPolicy{KeepLast: 1},
		Watermarks{Low: 1e-9, High: 2e-9, Emergency: 3e-9})
	r.o.ShedAdmitEvery = 1
	g := r.spawnGroup(t)

	dead := &floorBackend{floor: 2} // never catches up past epoch 2
	ok1 := &floorBackend{floor: 7}
	ok2 := &floorBackend{floor: 8}
	r.o.Attach(g, dead)
	r.o.Attach(g, ok1)
	r.o.Attach(g, ok2)

	for i := 1; i <= 8; i++ {
		r.ckpt(t, g, CheckpointOpts{})
	}

	// Legacy rule first: the dead member's floor pins everything.
	r.rec.Scan()
	left := map[uint64]bool{}
	for _, m := range r.store.Store().Manifests(g.ID) {
		left[m.Epoch] = true
	}
	for _, want := range []uint64{2, 3, 4, 5, 6, 7, 8} {
		if !left[want] {
			t.Fatalf("legacy scan reclaimed epoch %d pinned by the floor-2 member (left: %v)", want, left)
		}
	}

	// Under a 2-of-3 quorum the safety floor is the 2nd-highest member
	// floor (7): the scan reclaims the dead member's backlog, which it
	// will replay from its in-memory catch-up queue, not the store.
	g.SetQuorum(QuorumPolicy{W: 2})
	r.rec.Scan()
	if err := r.store.Store().AuditReachability(); err != nil {
		t.Fatalf("audit after quorum scan: %v", err)
	}
	left = map[uint64]bool{}
	for _, m := range r.store.Store().Manifests(g.ID) {
		left[m.Epoch] = true
	}
	for _, want := range []uint64{7, 8} {
		if !left[want] {
			t.Errorf("quorum-protected epoch %d was reclaimed (left: %v)", want, left)
		}
	}
	for _, gone := range []uint64{2, 3, 4, 5, 6} {
		if left[gone] {
			t.Errorf("epoch %d still pinned by the dead minority under quorum (left: %v)", gone, left)
		}
	}
}
