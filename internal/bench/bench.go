// Package bench implements the experiment harness: one function per
// table, figure, or quantitative claim in the paper's evaluation,
// returning structured results that cmd/aurora-bench prints as the
// paper's tables and bench_test.go reports as benchmark metrics.
//
// Workloads run on the simulated machine; reported times are virtual
// (cost-model) microseconds. See DESIGN.md §5 for calibration and
// EXPERIMENTS.md for paper-vs-measured numbers.
package bench

import (
	"fmt"

	"aurora/internal/apps/redis"
	"aurora/internal/core"
	"aurora/internal/kernel"
	"aurora/internal/objstore"
	"aurora/internal/storage"
	"aurora/internal/vm"
)

// Machine is one fully assembled simulated host: the paper's testbed
// (four Optane NVMe drives) in miniature.
type Machine struct {
	Clock *storage.Clock
	K     *kernel.Kernel
	O     *core.Orchestrator
	API   *core.API
	Objs  *objstore.Store
	Store *core.StoreBackend
	Mem   *core.MemoryBackend
}

// NewMachine boots the standard experiment machine.
func NewMachine() *Machine {
	clock := storage.NewClock()
	k := kernel.NewWith(clock, vm.NewPhysMem(0))
	o := core.NewOrchestrator(k)
	array := storage.NewOptaneArray(4, clock)
	objs := objstore.Create(array, clock)
	return &Machine{
		Clock: clock,
		K:     k,
		O:     o,
		API:   core.NewAPI(o),
		Objs:  objs,
		Store: core.NewStoreBackend(objs, k.Mem, clock),
		Mem:   core.NewMemoryBackend(k.Mem, 8),
	}
}

// RedisInstance is the Table 3/4 workload: a mini-Redis populated to a
// working-set size.
type RedisInstance struct {
	M     *Machine
	Proc  *kernel.Process
	Store *redis.Store
	Group *core.Group
	Pages int64
}

// NewRedisInstance spawns and populates a mini-Redis whose resident
// working set is wsBytes. A few thousand keys go through the real SET
// path for object-graph realism; the rest of the arena is touched in
// bulk so multi-GiB working sets stay tractable.
func NewRedisInstance(m *Machine, wsBytes int64) (*RedisInstance, error) {
	arena := wsBytes + (wsBytes / 4)
	buckets := 4096
	p, st, err := redis.Spawn(m.K, 0, "/redis.sock", buckets, arena, nil)
	if err != nil {
		return nil, err
	}
	// Real keys through the data path.
	keys := 2000
	if wsBytes < 8<<20 {
		keys = int(wsBytes / (8 << 10))
	}
	if err := redis.PopulateDirect(st, keys, 1024); err != nil {
		return nil, err
	}
	// Bulk-touch the remaining working set.
	used, err := st.UsedBytes()
	if err != nil {
		return nil, err
	}
	if remaining := wsBytes - used; remaining > 0 {
		chunk := make([]byte, 1<<20)
		for i := range chunk {
			chunk[i] = byte(i * 13)
		}
		base := p.HeapBase() + vm.Addr(used)
		for off := int64(0); off < remaining; off += int64(len(chunk)) {
			n := int64(len(chunk))
			if off+n > remaining {
				n = remaining - off
			}
			if err := p.WriteMem(base+vm.Addr(off), chunk[:n]); err != nil {
				return nil, err
			}
		}
	}
	g, err := m.O.Persist("redis", p)
	if err != nil {
		return nil, err
	}
	return &RedisInstance{M: m, Proc: p, Store: st, Group: g, Pages: wsBytes >> vm.PageShift}, nil
}

// DirtyFraction rewrites the given fraction of the working set,
// spread uniformly, to set up an incremental checkpoint.
func (ri *RedisInstance) DirtyFraction(frac float64) error {
	if frac <= 0 {
		return nil
	}
	step := int64(1 / frac)
	if step < 1 {
		step = 1
	}
	for pg := int64(0); pg < ri.Pages; pg += step {
		if err := ri.Proc.WriteMem(ri.Proc.HeapBase()+vm.Addr(pg<<vm.PageShift), []byte{0xd1}); err != nil {
			return err
		}
	}
	return nil
}

// Table3Result is the stop-time breakdown comparison of Table 3.
type Table3Result struct {
	WorkingSet int64
	DirtyFrac  float64
	Full       core.CheckpointBreakdown
	Incr       core.CheckpointBreakdown
}

// Table3 reproduces Table 3: checkpoint a Redis instance with working
// set wsBytes in full mode, dirty dirtyFrac of it, and checkpoint
// incrementally.
func Table3(wsBytes int64, dirtyFrac float64) (*Table3Result, error) {
	m := NewMachine()
	ri, err := NewRedisInstance(m, wsBytes)
	if err != nil {
		return nil, err
	}
	m.O.Attach(ri.Group, m.Store)

	full, err := m.O.Checkpoint(ri.Group, core.CheckpointOpts{Full: true})
	if err != nil {
		return nil, err
	}
	if err := ri.DirtyFraction(dirtyFrac); err != nil {
		return nil, err
	}
	incr, err := m.O.Checkpoint(ri.Group, core.CheckpointOpts{})
	if err != nil {
		return nil, err
	}
	// The breakdowns above hold stop time only; flush times are patched
	// into the group's records when the background flusher retires each
	// epoch. Sync and re-read so the report carries both.
	if err := m.O.Sync(ri.Group); err != nil {
		return nil, err
	}
	bds := ri.Group.Breakdowns()
	full, incr = bds[len(bds)-2], bds[len(bds)-1]
	return &Table3Result{WorkingSet: wsBytes, DirtyFrac: dirtyFrac, Full: full, Incr: incr}, nil
}

// Print renders the result like the paper's Table 3.
func (r *Table3Result) Print() {
	fmt.Printf("Table 3: stop time, Redis working set %s (dirty %.0f%%)\n",
		fmtBytes(r.WorkingSet), r.DirtyFrac*100)
	fmt.Printf("  %-24s %14s %14s\n", "Checkpoint", "Full", "Incremental")
	fmt.Printf("  %-24s %14s %14s\n", "Metadata copy",
		storage.Micros(r.Full.MetadataCopy), storage.Micros(r.Incr.MetadataCopy))
	fmt.Printf("  %-24s %14s %14s\n", "Lazy data copy",
		storage.Micros(r.Full.LazyDataCopy), storage.Micros(r.Incr.LazyDataCopy))
	fmt.Printf("  %-24s %14s %14s\n", "Application stop time",
		storage.Micros(r.Full.StopTime), storage.Micros(r.Incr.StopTime))
	fmt.Printf("  (pages captured: full=%d incremental=%d; background flush: %s / %s)\n\n",
		r.Full.PagesCaptured, r.Incr.PagesCaptured,
		storage.Micros(r.Full.FlushTime), storage.Micros(r.Incr.FlushTime))
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%d GiB", n>>30)
	case n >= 1<<20:
		return fmt.Sprintf("%d MiB", n>>20)
	default:
		return fmt.Sprintf("%d KiB", n>>10)
	}
}
