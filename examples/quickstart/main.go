// Quickstart: persist an application, crash it, restore it.
//
// This is the single level store's core promise: the application
// manages only its in-memory state; Aurora makes that state durable
// with continuous checkpoints, and after a crash the application
// resumes exactly where the last checkpoint left it — registers,
// memory, descriptors and all.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"aurora/internal/core"
	"aurora/internal/kernel"
	"aurora/internal/objstore"
	"aurora/internal/storage"
	"aurora/internal/vm"
)

// app is a tiny workload: every scheduler quantum it appends one
// entry to an in-memory journal. It has no persistence code at all.
type app struct{ base vm.Addr }

func (a *app) ProgName() string { return "quickstart-app" }

func (a *app) Snapshot() []byte {
	e := kernel.NewEncoder()
	e.U64(uint64(a.base))
	return e.Bytes()
}

func (a *app) Step(k *kernel.Kernel, p *kernel.Process, t *kernel.Thread) error {
	var hdr [8]byte
	if err := p.ReadMem(a.base, hdr[:]); err != nil {
		return err
	}
	n := uint64(hdr[0]) | uint64(hdr[1])<<8
	entry := []byte(fmt.Sprintf("entry-%04d|", n))
	if err := p.WriteMem(a.base+8+vm.Addr(n*12), entry); err != nil {
		return err
	}
	n++
	hdr[0], hdr[1] = byte(n), byte(n>>8)
	return p.WriteMem(a.base, hdr[:])
}

func journal(p *kernel.Process, base vm.Addr) (int, string) {
	var hdr [8]byte
	p.ReadMem(base, hdr[:])
	n := int(hdr[0]) | int(hdr[1])<<8
	buf := make([]byte, 36)
	start := 0
	if n > 3 {
		start = n - 3
	}
	p.ReadMem(base+8+vm.Addr(start*12), buf[:(n-start)*12])
	return n, string(buf[:(n-start)*12])
}

func init() {
	kernel.RegisterProgram("quickstart-app", func(k *kernel.Kernel, p *kernel.Process, state []byte) (kernel.Program, error) {
		d := kernel.NewDecoder(state)
		return &app{base: vm.Addr(d.U64())}, nil
	})
}

func main() {
	// Boot a simulated Aurora machine: kernel, orchestrator, and an
	// object store on a 4-drive Optane array.
	clock := storage.NewClock()
	k := kernel.NewWith(clock, vm.NewPhysMem(0))
	orch := core.NewOrchestrator(k)
	store := objstore.Create(storage.NewOptaneArray(4, clock), clock)

	// Start the application. Note: it has no save/load logic.
	p, err := k.Spawn(0, "journal-app")
	if err != nil {
		log.Fatal(err)
	}
	p.SetProgram(&app{base: p.HeapBase()})

	// `sls persist` + `sls attach`: transparent persistence begins.
	g, err := orch.Persist("journal", p)
	if err != nil {
		log.Fatal(err)
	}
	orch.Attach(g, core.NewStoreBackend(store, k.Mem, clock))

	// Run with continuous checkpoints (the paper's 100 Hz default).
	for tick := 0; tick < 5; tick++ {
		k.Run(20)
		bd, err := orch.Checkpoint(g, core.CheckpointOpts{})
		if err != nil {
			log.Fatal(err)
		}
		n, tail := journal(p, p.HeapBase())
		fmt.Printf("tick %d: journal has %3d entries (%s) — checkpoint stop time %s\n",
			tick, n, tail, storage.Micros(bd.StopTime))
	}

	// CRASH. The process dies mid-flight with unsaved progress.
	k.Run(13) // work past the last checkpoint is lost, as it should be
	k.Exit(p, 137)
	k.Reap(p)
	fmt.Println("\n*** crash: application killed ***")

	// Restore: the application resumes from the last checkpoint,
	// oblivious to the interruption.
	ng, bd, err := orch.Restore(g, 0, core.RestoreOpts{Lazy: true})
	if err != nil {
		log.Fatal(err)
	}
	np, err := k.Process(ng.PIDs()[0])
	if err != nil {
		log.Fatal(err)
	}
	n, tail := journal(np, np.HeapBase())
	fmt.Printf("restored in %s (object store read %s): journal has %3d entries (%s)\n",
		storage.Micros(bd.Total), storage.Micros(bd.ObjectStoreRead), n, tail)

	// And it keeps running.
	k.Run(40)
	n2, tail2 := journal(np, np.HeapBase())
	fmt.Printf("resumed execution: journal now %3d entries (%s)\n", n2, tail2)
	if n2 <= n {
		log.Fatal("restored application did not resume")
	}
	fmt.Println("\nquickstart OK")
}
