package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"aurora/internal/objstore"
	"aurora/internal/storage"
)

// This file implements fault-tolerant demand paging for lazy restores:
// the read-side twin of the flush pipeline's self-healing (health.go).
// A lazily restored object pages from its primary store through a
// lazyPageSource; a faulted read retries with bounded backoff, fails
// over to any peer holding the same content hash (a second store, a
// netback replica), and writes pages served by a peer back onto the
// primary (read-repair). Read failures feed the same per-backend
// health ladder the flush pipeline uses, so a store that cannot serve
// reads degrades for writers too.

// BlockProvider serves verified block contents by content hash. Any
// peer backend of a group holds bit-identical blocks under the same
// hashes (dedup keys are content hashes), so any of them can stand in
// for a failed primary during demand paging. *objstore.Store and
// netback's Receiver implement it.
type BlockProvider interface {
	FetchBlock(h objstore.Hash) ([]byte, bool)
}

// Demand-paging retry policy: small, because a faulting thread is
// stalled while we retry — failover to a peer beats waiting out a sick
// device. Backoff is charged to a detached clock lane (the repair
// effort is not the application's foreground time).
const (
	lazyReadRetries = 2
	lazyBackoffBase = 50 * time.Microsecond
)

// RecoveryStats aggregates a group's demand-paging repair effort.
type RecoveryStats struct {
	Failovers     int64 // pages served by a peer after the primary failed
	PagesRepaired int64 // peer pages written back onto the primary
	Retries       int64 // extra primary read attempts
}

// lazyPageSource implements vm.PageSource over object-store block
// references, with bounded retry, peer failover, and read-repair.
type lazyPageSource struct {
	o      *Orchestrator
	sb     *StoreBackend
	refs   map[int64]objstore.BlockRef
	inline map[int64][]byte // pages already materialized as bytes

	// pinGroup/pinEpoch name the store epoch this source's block
	// references were resolved against. They are immutable after
	// construction; the space reclaimer must not drop that epoch while
	// the source lives, because a merge-forward drop can free
	// superseded blocks the source still addresses by raw offset.
	pinGroup uint64
	pinEpoch uint64

	mu    sync.Mutex
	g     *Group // bound once the restored group exists; may stay nil
	peers []BlockProvider
	skips int // probe pacing against a down primary

	failovers atomic.Int64
	repaired  atomic.Int64
	retries   atomic.Int64
}

func newLazyPageSource(o *Orchestrator, sb *StoreBackend, refs map[int64]objstore.BlockRef, inline map[int64][]byte, peers []BlockProvider) *lazyPageSource {
	return &lazyPageSource{o: o, sb: sb, refs: refs, inline: inline, peers: peers}
}

// bind attaches the source to the restored group so read faults drive
// the group's backend-health ladder and stats.
func (s *lazyPageSource) bind(g *Group) {
	s.mu.Lock()
	s.g = g
	s.mu.Unlock()
}

func (s *lazyPageSource) group() *Group {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.g
}

func (s *lazyPageSource) stats() RecoveryStats {
	return RecoveryStats{
		Failovers:     s.failovers.Load(),
		PagesRepaired: s.repaired.Load(),
		Retries:       s.retries.Load(),
	}
}

// FetchPage implements vm.PageSource. It returns (nil, nil) for pages
// the image never captured (zero-fill), and an error wrapping
// ErrBackendDown when the primary and every peer failed.
func (s *lazyPageSource) FetchPage(idx int64) ([]byte, error) {
	if d, ok := s.inline[idx]; ok {
		return d, nil
	}
	ref, ok := s.refs[idx]
	if !ok {
		return nil, nil
	}

	// A primary the health machine already marked down is mostly left
	// alone: peers serve, with only a periodic probe (mirroring the
	// flush pipeline's pacing).
	primaryFirst := true
	if g := s.group(); g != nil {
		h := g.healthOf(s.sb)
		g.healthMu.Lock()
		if h.state == BackendDown {
			s.mu.Lock()
			s.skips++
			primaryFirst = s.skips%downProbeEvery == 0
			s.mu.Unlock()
		}
		g.healthMu.Unlock()
	}

	var data []byte
	var perr error
	if primaryFirst {
		data, perr = s.readPrimary(ref)
	}
	if data == nil {
		if d, served := s.fetchFromPeers(ref); served {
			data = d
			s.failovers.Add(1)
			// Read-repair: heal the primary's copy in place so the
			// next fault (and the next scrub) finds it intact.
			if err := s.sb.store.RepairBlock(ref, d); err == nil {
				s.repaired.Add(1)
			}
		}
	}
	if data == nil && !primaryFirst {
		// Peers failed and the paced probe was skipped: the down
		// primary is still the only possible server, so try it.
		data, perr = s.readPrimary(ref)
	}
	if data == nil {
		if perr == nil {
			perr = fmt.Errorf("%d peers hold no copy", s.peerCount())
		}
		return nil, fmt.Errorf("%w: demand-paged read of page %d from %s failed (%d peers tried): %v",
			ErrBackendDown, idx, s.sb.Name(), s.peerCount(), perr)
	}
	return data, nil
}

// readPrimary reads one block from the primary store with bounded
// retry and backoff, feeding the result into the health ladder.
func (s *lazyPageSource) readPrimary(ref objstore.BlockRef) ([]byte, error) {
	var lane *storage.Clock
	backoff := lazyBackoffBase
	var lastErr error
	for attempt := 0; attempt <= lazyReadRetries; attempt++ {
		if attempt > 0 {
			s.retries.Add(1)
			if lane == nil {
				lane = s.o.K.Clock.Lane()
			}
			lane.Advance(backoff)
			backoff *= 2
		}
		data, err := s.sb.store.ReadBlock(ref)
		if err == nil {
			s.noteReadOK()
			return data, nil
		}
		lastErr = err
		if errors.Is(err, storage.ErrDeviceDown) {
			break // permanent: retrying a dead device buys nothing
		}
		if errors.Is(err, objstore.ErrCorruptBlock) {
			break // rot does not heal on retry; a peer can heal it
		}
	}
	s.noteReadFault(lastErr)
	return nil, lastErr
}

func (s *lazyPageSource) fetchFromPeers(ref objstore.BlockRef) ([]byte, bool) {
	s.mu.Lock()
	peers := append([]BlockProvider(nil), s.peers...)
	s.mu.Unlock()
	for _, p := range peers {
		if d, ok := p.FetchBlock(ref.Hash); ok {
			return d, true
		}
	}
	return nil, false
}

func (s *lazyPageSource) peerCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.peers)
}

// noteReadFault pushes the primary down the shared health ladder:
// demand-paging reads and pipeline flushes count against the same
// per-backend record.
func (s *lazyPageSource) noteReadFault(err error) {
	g := s.group()
	if g == nil {
		return
	}
	h := g.healthOf(s.sb)
	g.healthMu.Lock()
	h.consecFails++
	h.lastErr = err
	if h.state == BackendHealthy {
		h.state = BackendDegraded
	}
	if h.consecFails >= s.o.downAfter() {
		h.state = BackendDown
	}
	g.healthMu.Unlock()
}

// noteReadOK clears read-fault pressure on a backend that is otherwise
// healthy. It never promotes a degraded/down backend: recovery
// promotion belongs to the flush pipeline's probes, which must drain
// the catch-up queue first.
func (s *lazyPageSource) noteReadOK() {
	g := s.group()
	if g == nil {
		return
	}
	h := g.healthOf(s.sb)
	g.healthMu.Lock()
	if h.state == BackendHealthy {
		h.consecFails = 0
	}
	g.healthMu.Unlock()
}

// HasPage implements vm.PageSource.
func (s *lazyPageSource) HasPage(idx int64) bool {
	if _, ok := s.inline[idx]; ok {
		return true
	}
	_, ok := s.refs[idx]
	return ok
}

// Pages implements vm.PageSource.
func (s *lazyPageSource) Pages() []int64 {
	out := make([]int64, 0, len(s.refs)+len(s.inline))
	for idx := range s.refs {
		out = append(out, idx)
	}
	for idx := range s.inline {
		if _, dup := s.refs[idx]; !dup {
			out = append(out, idx)
		}
	}
	return out
}
