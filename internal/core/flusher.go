package core

import (
	"errors"
	"sync"
	"time"

	"aurora/internal/storage"
)

// This file implements the background flush pipeline. A serialization
// barrier (Checkpoint) hands its immutable image to the group's
// flusher and returns as soon as the group has resumed; the fleet's
// shard workers (fleet.go) fan the image out to every attached backend
// concurrently. Durability — g.Durable(), and with it Released()/
// external consistency — advances only when an epoch *retires*: all of
// its backend flushes finished AND every earlier epoch retired first,
// so the durable frontier never skips an epoch whose flush failed or
// is still in flight.
//
// The flusher owns no goroutines. It is a per-group scheduling record
// — pending jobs, in-flight credits, the admission window — that the
// shard workers pull from. That is what makes 10k groups cheap: a
// group that is not flushing costs a struct, not two parked
// goroutines and a channel.

// Pipeline defaults, overridable per Orchestrator.
const (
	defaultFlushWorkers = 2
	defaultFlushQueue   = 4
)

// errFlusherClosed fails jobs caught in Enqueue when the group is
// unpersisted out from under a checkpoint storm.
var errFlusherClosed = errors.New("core: flusher closed")

// flushJob tracks one epoch's trip through the pipeline.
type flushJob struct {
	img    *Image
	bdIdx  int           // index into g.ckpts whose FlushTime gets patched
	done   chan struct{} // closed when the flush attempt finishes
	budget int64         // frame bytes charged to the fleet memory budget

	// Guarded by the flusher's mu.
	completed bool
	dur       time.Duration
	err       error
}

// flusher is a per-group flush pipeline: a bounded admission window
// (enqueue blocks when full — backpressure on the checkpointing
// caller), a credit count bounding per-group flush concurrency, and
// in-order epoch retirement. Dispatch runs on the fleet's shard
// workers.
type flusher struct {
	o     *Orchestrator
	g     *Group
	shard *fleetShard

	// syncMu serializes Sync callers so a failed epoch is never
	// retried by two foreground flushers at once.
	syncMu sync.Mutex

	mu       sync.Mutex
	cond     *sync.Cond  // wakes Enqueue when the window drains, and Close
	credits  int         // max concurrently running flushes for this group
	window   int         // max admitted-but-unfinished jobs (credits + queue)
	admitted int         // jobs admitted and not yet completed
	inflight int         // jobs currently running on shard workers
	closed   bool
	pending  []*flushJob // admitted, waiting for a credit; oldest first
	order    []uint64    // epochs in enqueue (== epoch) order, oldest first
	byEpoch  map[uint64]*flushJob
}

func newFlusher(o *Orchestrator, g *Group, workers, depth int) *flusher {
	if workers <= 0 {
		workers = defaultFlushWorkers
	}
	if depth <= 0 {
		depth = defaultFlushQueue
	}
	f := &flusher{
		o:       o,
		g:       g,
		credits: workers,
		window:  workers + depth,
		byEpoch: make(map[uint64]*flushJob),
	}
	f.cond = sync.NewCond(&f.mu)
	f.shard = o.fleetOf().place(g.ID)
	return f
}

// Enqueue hands an image to the pipeline. It blocks while the
// admission window is full, which is the backpressure that keeps a
// checkpoint storm from building an unbounded backlog of unflushed
// epochs; the fleet's global memory budget adds a second, cross-group
// bound on the frame bytes those backlogs pin. A blocked Enqueue is
// woken — and its job failed — if the flusher closes underneath it
// (Unpersist during a storm), so the checkpointing goroutine can
// never be stranded.
func (f *flusher) Enqueue(img *Image, bdIdx int) {
	job := &flushJob{img: img, bdIdx: bdIdx, done: make(chan struct{})}
	job.budget = f.o.fleetOf().acquireBudget(img.FootprintBytes())
	// Register before waiting for admission so Sync/drain/depth always
	// see the job even while backpressure holds it out of the window.
	f.mu.Lock()
	f.order = append(f.order, img.Epoch)
	f.byEpoch[img.Epoch] = job
	for f.admitted >= f.window && !f.closed {
		f.cond.Wait()
	}
	if f.closed {
		job.completed = true
		job.err = errFlusherClosed
		f.mu.Unlock()
		if job.budget > 0 {
			f.o.fleetOf().releaseBudget(job.budget)
		}
		close(job.done)
		return
	}
	f.admitted++
	f.pending = append(f.pending, job)
	ready := f.inflight < f.credits
	f.mu.Unlock()
	if ready {
		f.shard.wake(f)
	}
}

// depth reports the number of epochs not yet retired (queued, in
// flight, or stalled behind a failure).
func (f *flusher) depth() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.order)
}

// dispatch runs at most one pending job on the calling shard worker's
// flush lane. If more work remains runnable it re-queues the flusher
// before running the job, so a second worker can pick it up while this
// one is busy — per-group concurrency up to the credit count.
func (f *flusher) dispatch(lane *storage.Clock) {
	f.mu.Lock()
	if len(f.pending) == 0 || f.inflight >= f.credits {
		f.mu.Unlock()
		return
	}
	job := f.pending[0]
	f.pending = f.pending[1:]
	f.inflight++
	more := len(f.pending) > 0 && f.inflight < f.credits
	f.mu.Unlock()
	if more {
		f.shard.wake(f)
	}
	f.run(job, lane)
}

// run executes one flush attempt on the given worker lane and retires
// whatever became eligible. The lane advances by the flush's modeled
// duration so back-to-back jobs on a busy worker queue in virtual
// time; with a nil lane (fleet shut down, inline fallback) the job
// charges a fresh lane off the kernel clock.
func (f *flusher) run(job *flushJob, lane *storage.Clock) {
	base := lane
	if base == nil {
		base = f.o.K.Clock.Lane()
	} else {
		// The device cannot start work before the flush was issued.
		base.AdvanceTo(f.o.K.Clock.Now())
	}
	start := base.Now()
	dur, err := f.o.flushImageOn(f.g, job.img, true, base)
	base.AdvanceTo(start + dur)
	f.mu.Lock()
	job.dur, job.err, job.completed = dur, err, true
	f.inflight--
	f.admitted--
	f.retireLocked()
	more := len(f.pending) > 0 && f.inflight < f.credits
	f.cond.Broadcast()
	f.mu.Unlock()
	if job.budget > 0 {
		f.o.fleetOf().releaseBudget(job.budget)
	}
	if more {
		f.shard.wake(f)
	}
	close(job.done)
}

// retireLocked advances the durable frontier over every leading epoch
// that flushed successfully. A failed epoch stalls retirement: later
// epochs may finish out of order but stay unretired, so durability
// never claims a history with a hole in it. Caller holds f.mu.
func (f *flusher) retireLocked() {
	for len(f.order) > 0 {
		epoch := f.order[0]
		job := f.byEpoch[epoch]
		if job == nil || !job.completed || job.err != nil {
			return
		}
		f.order = f.order[1:]
		delete(f.byEpoch, epoch)
		f.retire(epoch, job)
	}
}

// retire marks one epoch durable and lets backends release history.
func (f *flusher) retire(epoch uint64, job *flushJob) {
	g := f.g
	g.mu.Lock()
	if epoch > g.durable {
		g.durable = epoch
	}
	if job.bdIdx >= 0 && job.bdIdx < len(g.ckpts) {
		g.ckpts[job.bdIdx].FlushTime = job.dur
	}
	g.mu.Unlock()
	// History trimming is deferred to retirement: it merges old images
	// forward in place, which must never race with a flush still
	// reading them.
	for _, b := range g.Backends() {
		if t, ok := b.(trimmer); ok {
			t.Trim(g.ID)
		}
	}
}

// drain waits until every enqueued epoch has completed its flush
// attempt. It does not retry failures — failed epochs stay stalled.
func (f *flusher) drain() {
	for {
		f.mu.Lock()
		var wait *flushJob
		for _, j := range f.byEpoch {
			if !j.completed {
				wait = j
				break
			}
		}
		f.mu.Unlock()
		if wait == nil {
			return
		}
		<-wait.done
	}
}

// Sync drains the pipeline and then retries any stalled (failed)
// epochs inline, oldest first. It returns nil only when every epoch
// handed to the pipeline has retired; otherwise it surfaces the first
// failure, leaving the durable frontier where it was.
func (f *flusher) Sync() error {
	f.syncMu.Lock()
	defer f.syncMu.Unlock()
	for {
		f.mu.Lock()
		var wait *flushJob
		for _, j := range f.byEpoch {
			if !j.completed {
				wait = j
				break
			}
		}
		if wait != nil {
			f.mu.Unlock()
			<-wait.done
			continue
		}
		if len(f.order) == 0 {
			f.mu.Unlock()
			return nil
		}
		// Everything completed but the head did not retire: it failed.
		head := f.byEpoch[f.order[0]]
		if head.err == nil {
			// Retired concurrently between checks; re-examine.
			f.retireLocked()
			f.mu.Unlock()
			continue
		}
		f.mu.Unlock()

		dur, err := f.o.flushImage(f.g, head.img, false)
		f.mu.Lock()
		if err != nil {
			head.err = err
			f.mu.Unlock()
			return err
		}
		head.dur, head.err = dur, nil
		f.retireLocked()
		f.mu.Unlock()
	}
}

// Close fails any Enqueue still waiting for admission, then drains the
// pipeline. Failed epochs are abandoned un-retried (the group is going
// away). There are no per-group workers to stop — dispatch capacity
// belongs to the fleet, which outlives the group.
func (f *flusher) Close() {
	f.mu.Lock()
	f.closed = true
	f.cond.Broadcast()
	f.mu.Unlock()
	f.drain()
}

// trimmer is implemented by backends that defer history trimming to
// epoch retirement (see MemoryBackend.Trim).
type trimmer interface {
	Trim(group uint64)
}
