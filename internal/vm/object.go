package vm

import (
	"fmt"
	"sync"
	"sync/atomic"
)

var objectIDs atomic.Uint64

// Object is a Mach-style VM object: a container of pages backing one
// or more mappings. Anonymous memory, shared memory segments, and
// file caches are all Objects. Objects form shadow chains for
// fork-style COW: a lookup that misses in the top object falls through
// to its shadow.
//
// Aurora extends the object with checkpoint state: a protection epoch
// (pages write-protected by the last serialization barrier), a dirty
// set (pages written since the last checkpoint), a frozen set (the
// original frames owned by the in-flight checkpoint), heat counters
// for clock-driven restore prefetch, and swap slots.
type Object struct {
	ID   uint64
	Name string // debugging aid: "heap", "stack", "shm:1234", ...
	Anon bool   // anonymous (zero-fill) memory

	// barrier serializes the serialization barrier against in-flight
	// write accesses: BeginCheckpoint holds the write side while it
	// captures frames; the data path holds the read side from the write
	// permission check through the data copy (see AddressSpace.access).
	// On real hardware the check and the store are atomic at the MMU;
	// without this lock a write could land in a frame after the barrier
	// captured it, mutating data the background flusher is reading.
	barrier sync.RWMutex

	mu     sync.Mutex
	size   int64 // bytes; lookups beyond size still zero-fill for anon
	pages  map[int64]*Frame
	shadow *Object // backing object for fork-style COW chains
	refs   int32

	// Aurora checkpoint tracking.
	tracked   bool             // registered with the SLS orchestrator
	protected map[int64]bool   // pages write-protected for COW tracking
	dirty     map[int64]bool   // pages written since last checkpoint epoch
	frozen    map[int64]*Frame // original frames owned by in-flight checkpoint
	heat      map[int64]uint32 // access counts for restore prefetch
	swapSlots map[int64]int64  // page -> swap slot for paged-out pages
	epoch     uint64           // checkpoint epoch of the last barrier
	source    PageSource       // lazy-restore backing (nil = none)
}

// NewObject creates an anonymous VM object of the given size in bytes.
func NewObject(name string, size int64) *Object {
	return &Object{
		ID:        objectIDs.Add(1),
		Name:      name,
		Anon:      true,
		size:      size,
		pages:     make(map[int64]*Frame),
		refs:      1,
		protected: make(map[int64]bool),
		dirty:     make(map[int64]bool),
		frozen:    make(map[int64]*Frame),
		heat:      make(map[int64]uint32),
		swapSlots: make(map[int64]int64),
	}
}

// Ref adds a mapping reference.
func (o *Object) Ref() { atomic.AddInt32(&o.refs, 1) }

// Deref drops a mapping reference and reports whether the object died.
func (o *Object) Deref() bool { return atomic.AddInt32(&o.refs, -1) == 0 }

// Refs returns the current reference count.
func (o *Object) Refs() int32 { return atomic.LoadInt32(&o.refs) }

// Size returns the object's size in bytes.
func (o *Object) Size() int64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.size
}

// Grow extends the object to at least size bytes.
func (o *Object) Grow(size int64) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if size > o.size {
		o.size = size
	}
}

// Shadow returns the object's backing object, if any.
func (o *Object) Shadow() *Object {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.shadow
}

// NewShadow creates a shadow object on top of o, as fork does for
// private mappings: the child object starts empty and falls through to
// o on lookup; writes populate the child (fork-style private COW).
func (o *Object) NewShadow() *Object {
	s := NewObject(o.Name+"+shadow", o.Size())
	s.Anon = o.Anon
	o.Ref()
	s.shadow = o
	return s
}

// BeginWrite and EndWrite bracket one write access to the object's
// pages. They hold the barrier read-side so a concurrent serialization
// barrier cannot capture a frame between the write-permission check
// and the data copy.
func (o *Object) BeginWrite() { o.barrier.RLock() }

// EndWrite releases the write-access bracket taken by BeginWrite.
func (o *Object) EndWrite() { o.barrier.RUnlock() }

// SetTracked marks the object as registered with the SLS orchestrator.
func (o *Object) SetTracked(v bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.tracked = v
}

// Tracked reports whether the object is under SLS checkpoint tracking.
func (o *Object) Tracked() bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.tracked
}

// Epoch returns the checkpoint epoch stamped by the last barrier.
func (o *Object) Epoch() uint64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.epoch
}

// lookupLocked finds the frame for page idx, walking the shadow chain.
// It returns the frame and the object that owns it (nil if unresident).
func (o *Object) lookupLocked(idx int64) (*Frame, *Object) {
	if f, ok := o.pages[idx]; ok {
		return f, o
	}
	for s := o.shadow; s != nil; {
		s.mu.Lock()
		f, ok := s.pages[idx]
		next := s.shadow
		s.mu.Unlock()
		if ok {
			return f, s
		}
		s = next
	}
	return nil, nil
}

// Lookup finds the frame for page idx, walking the shadow chain.
func (o *Object) Lookup(idx int64) (*Frame, *Object) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.lookupLocked(idx)
}

// ResidentPages returns the sorted-free list of page indices resident
// in this object (shadow chain excluded).
func (o *Object) ResidentPages() []int64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make([]int64, 0, len(o.pages))
	for idx := range o.pages {
		out = append(out, idx)
	}
	return out
}

// ResidentCount returns the number of pages resident in this object.
func (o *Object) ResidentCount() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.pages)
}

// InsertPage installs a frame at page idx, replacing (and releasing to
// pm) any previous frame. Used by restore and swap-in paths.
func (o *Object) InsertPage(pm *PhysMem, idx int64, f *Frame) {
	o.mu.Lock()
	old := o.pages[idx]
	o.pages[idx] = f
	delete(o.swapSlots, idx)
	o.mu.Unlock()
	if old != nil {
		pm.Free(old)
	}
}

// Touch bumps the heat counter used by clock-driven restore prefetch.
func (o *Object) Touch(idx int64) {
	o.mu.Lock()
	o.heat[idx]++
	o.mu.Unlock()
}

// Heat returns the access count of page idx.
func (o *Object) Heat(idx int64) uint32 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.heat[idx]
}

// SetHeat replaces the heat counter (restore path).
func (o *Object) SetHeat(idx int64, h uint32) {
	o.mu.Lock()
	o.heat[idx] = h
	o.mu.Unlock()
}

// MarkDirty records a write to page idx for incremental checkpointing.
func (o *Object) MarkDirty(idx int64) {
	o.mu.Lock()
	o.dirty[idx] = true
	o.mu.Unlock()
}

// DirtyPages returns the pages written since the last barrier.
func (o *Object) DirtyPages() []int64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make([]int64, 0, len(o.dirty))
	for idx := range o.dirty {
		out = append(out, idx)
	}
	return out
}

// DirtyCount returns the size of the dirty set.
func (o *Object) DirtyCount() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.dirty)
}

// PageSource supplies pages for lazy restores: a restored object
// starts empty, with faults pulling pages from the checkpoint image
// (memory backend) or the object store (disk backend) on demand.
type PageSource interface {
	// FetchPage returns the page contents, or nil if the source does
	// not hold the page (the page then zero-fills).
	FetchPage(idx int64) ([]byte, error)
	// HasPage reports whether the source holds the page.
	HasPage(idx int64) bool
	// Pages enumerates the source's page indices, so a full
	// checkpoint can capture pages the application never faulted in.
	Pages() []int64
}

// SetSource attaches a lazy-restore page source.
func (o *Object) SetSource(src PageSource) {
	o.mu.Lock()
	o.source = src
	o.mu.Unlock()
}

// Source returns the attached page source, if any.
func (o *Object) Source() PageSource {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.source
}

// fetchFromSource pulls one page from the lazy-restore source into the
// object. It returns (nil, nil) when the source has no such page.
func (o *Object) fetchFromSource(pm *PhysMem, idx int64, meter *Meter) (*Frame, error) {
	o.mu.Lock()
	src := o.source
	if f, ok := o.pages[idx]; ok {
		o.mu.Unlock()
		return f, nil
	}
	o.mu.Unlock()
	if src == nil || !src.HasPage(idx) {
		return nil, nil
	}
	data, err := src.FetchPage(idx)
	if err != nil {
		return nil, err
	}
	f, err := pm.Alloc()
	if err != nil {
		return nil, err
	}
	copy(f.Data, data)
	o.mu.Lock()
	if cur, ok := o.pages[idx]; ok {
		o.mu.Unlock()
		pm.Free(f)
		return cur, nil
	}
	o.pages[idx] = f
	if end := (idx + 1) << PageShift; end > o.size {
		o.size = end
	}
	o.mu.Unlock()
	if meter != nil {
		meter.PageIns.Add(1)
	}
	return f, nil
}

// String identifies the object for debugging.
func (o *Object) String() string {
	return fmt.Sprintf("obj%d(%s,%dB)", o.ID, o.Name, o.Size())
}
