package storage

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Common device errors.
var (
	// ErrOutOfSpace is returned when a bounded device is full.
	ErrOutOfSpace = errors.New("storage: device out of space")
	// ErrBadOffset is returned for negative or misaligned offsets.
	ErrBadOffset = errors.New("storage: bad offset")
	// ErrClosed is returned after a device has been closed.
	ErrClosed = errors.New("storage: device closed")
)

// Device is a simulated block device. Reads and writes move real bytes
// and additionally charge a modeled cost to the device's Clock. Offsets
// are arbitrary byte offsets; devices store data sparsely so petabyte
// address spaces cost only what is written.
//
// Cost accounting: every operation returns the modeled time the
// operation occupied the device. Callers that overlap I/O (async
// flushers) divide by the effective queue depth themselves via the
// Batch helper.
type Device interface {
	// ReadAt reads len(p) bytes at off. Unwritten regions read as zero.
	ReadAt(p []byte, off int64) (time.Duration, error)
	// WriteAt writes len(p) bytes at off.
	WriteAt(p []byte, off int64) (time.Duration, error)
	// ReadBatch reads several extents concurrently at the device's
	// queue depth: the modeled cost divides by the effective
	// parallelism, which is how NVMe hardware actually behaves and
	// what makes bulk image reads fast.
	ReadBatch(bufs [][]byte, offs []int64) (time.Duration, error)
	// Sync models a durability barrier (e.g. a flush/FUA) and returns
	// its cost.
	Sync() (time.Duration, error)
	// Params returns the device's performance envelope.
	Params() DeviceParams
	// Stats returns cumulative operation counters.
	Stats() DeviceStats
}

// DeviceStats are cumulative counters for a device.
type DeviceStats struct {
	Reads        int64
	Writes       int64
	Syncs        int64
	BytesRead    int64
	BytesWritten int64
	Busy         time.Duration // total modeled device-busy time
}

// Redirector is implemented by devices that can produce a view of
// themselves charging modeled costs to a different clock. Background
// flush lanes use this so overlapped I/O does not stall the foreground
// virtual timeline.
type Redirector interface {
	Redirect(c *Clock) Device
}

// Redirect returns a view of dev charging costs to c when the device
// supports redirection, and dev itself otherwise.
func Redirect(dev Device, c *Clock) Device {
	if r, ok := dev.(Redirector); ok {
		return r.Redirect(c)
	}
	return dev
}

// ResidentReporter is implemented by devices that can report how many
// bytes are physically resident. Space-pressure watermarks are computed
// from Resident() against Params().Capacity.
type ResidentReporter interface {
	Resident() int64
}

// Trimmer is implemented by devices that support releasing a byte range
// back to the free pool (TRIM).
type Trimmer interface {
	Discard(off, length int64)
}

// ResidentBytes reports dev's resident byte count, unwrapping fault or
// redirection layers that forward the capability. It returns -1 when the
// device cannot report residency.
func ResidentBytes(dev Device) int64 {
	if r, ok := dev.(ResidentReporter); ok {
		return r.Resident()
	}
	return -1
}

// DiscardRange TRIMs [off, off+length) on dev when the device supports
// it, and is a no-op otherwise.
func DiscardRange(dev Device, off, length int64) {
	if t, ok := dev.(Trimmer); ok {
		t.Discard(off, length)
	}
}

// memCore is the shared state behind a MemDevice and all of its
// clock-redirected views: one set of blocks, counters, and locks.
type memCore struct {
	mu     sync.RWMutex
	blocks map[int64][]byte // block index -> block contents
	used   int64            // bytes resident
	closed bool
	stats  DeviceStats
}

// MemDevice is the standard Device implementation: a sparse in-memory
// block store plus the cost model from its DeviceParams. It is safe for
// concurrent use.
type MemDevice struct {
	*memCore
	params DeviceParams
	clock  *Clock
}

// NewMemDevice creates a device with the given performance profile.
// The clock may be shared among many devices; it is advanced by the
// modeled cost of every operation performed synchronously.
func NewMemDevice(params DeviceParams, clock *Clock) *MemDevice {
	if params.BlockSize <= 0 {
		params.BlockSize = 4096
	}
	return &MemDevice{
		memCore: &memCore{blocks: make(map[int64][]byte)},
		params:  params,
		clock:   clock,
	}
}

// WithClock returns a view sharing all device state (blocks, capacity
// accounting, stats) but charging modeled costs to c.
func (d *MemDevice) WithClock(c *Clock) *MemDevice {
	return &MemDevice{memCore: d.memCore, params: d.params, clock: c}
}

// Redirect implements Redirector.
func (d *MemDevice) Redirect(c *Clock) Device { return d.WithClock(c) }

// Params returns the device's performance envelope.
func (d *MemDevice) Params() DeviceParams { return d.params }

// Stats returns a snapshot of the cumulative counters.
func (d *MemDevice) Stats() DeviceStats {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.stats
}

// Resident returns the number of bytes physically resident on the
// device (sparse regions excluded).
func (d *MemDevice) Resident() int64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.used
}

// Close marks the device closed; subsequent operations fail.
func (d *MemDevice) Close() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.closed = true
}

// ReadAt implements Device.
func (d *MemDevice) ReadAt(p []byte, off int64) (time.Duration, error) {
	if off < 0 {
		return 0, ErrBadOffset
	}
	d.mu.RLock()
	if d.closed {
		d.mu.RUnlock()
		return 0, ErrClosed
	}
	bs := int64(d.params.BlockSize)
	for n := 0; n < len(p); {
		blk := (off + int64(n)) / bs
		bo := (off + int64(n)) % bs
		span := int(bs - bo)
		if span > len(p)-n {
			span = len(p) - n
		}
		if b, ok := d.blocks[blk]; ok {
			copy(p[n:n+span], b[bo:bo+int64(span)])
		} else {
			zero(p[n : n+span])
		}
		n += span
	}
	d.mu.RUnlock()

	cost := d.params.readCost(len(p))
	d.account(func(s *DeviceStats) {
		s.Reads++
		s.BytesRead += int64(len(p))
		s.Busy += cost
	})
	d.clock.Advance(cost)
	return cost, nil
}

// WriteAt implements Device.
func (d *MemDevice) WriteAt(p []byte, off int64) (time.Duration, error) {
	if off < 0 {
		return 0, ErrBadOffset
	}
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return 0, ErrClosed
	}
	bs := int64(d.params.BlockSize)
	if d.params.Capacity > 0 && len(p) > 0 {
		// Only bytes the write would newly materialize count against
		// capacity: rewriting resident blocks in place must keep working
		// on a full device or reclamation could never publish its own
		// results (superblock slots, reused free-list blocks).
		var growth int64
		for blk := off / bs; blk <= (off+int64(len(p))-1)/bs; blk++ {
			if _, ok := d.blocks[blk]; !ok {
				growth += bs
			}
		}
		if d.used+growth > d.params.Capacity {
			d.mu.Unlock()
			return 0, ErrOutOfSpace
		}
	}
	for n := 0; n < len(p); {
		blk := (off + int64(n)) / bs
		bo := (off + int64(n)) % bs
		span := int(bs - bo)
		if span > len(p)-n {
			span = len(p) - n
		}
		b, ok := d.blocks[blk]
		if !ok {
			b = make([]byte, bs)
			d.blocks[blk] = b
			d.used += bs
		}
		copy(b[bo:bo+int64(span)], p[n:n+span])
		n += span
	}
	d.mu.Unlock()

	cost := d.params.writeCost(len(p))
	d.account(func(s *DeviceStats) {
		s.Writes++
		s.BytesWritten += int64(len(p))
		s.Busy += cost
	})
	d.clock.Advance(cost)
	return cost, nil
}

// ReadBatch implements Device: data moves like sequential ReadAt calls
// but the modeled time overlaps requests at the queue depth.
func (d *MemDevice) ReadBatch(bufs [][]byte, offs []int64) (time.Duration, error) {
	if len(bufs) != len(offs) {
		return 0, ErrBadOffset
	}
	if len(bufs) == 0 {
		return 0, nil
	}
	d.mu.RLock()
	if d.closed {
		d.mu.RUnlock()
		return 0, ErrClosed
	}
	bs := int64(d.params.BlockSize)
	var bytesTotal int64
	for i, p := range bufs {
		off := offs[i]
		if off < 0 {
			d.mu.RUnlock()
			return 0, ErrBadOffset
		}
		for n := 0; n < len(p); {
			blk := (off + int64(n)) / bs
			bo := (off + int64(n)) % bs
			span := int(bs - bo)
			if span > len(p)-n {
				span = len(p) - n
			}
			if b, ok := d.blocks[blk]; ok {
				copy(p[n:n+span], b[bo:bo+int64(span)])
			} else {
				zero(p[n : n+span])
			}
			n += span
		}
		bytesTotal += int64(len(p))
	}
	d.mu.RUnlock()

	per := d.params.readCost(int(bytesTotal) / len(bufs))
	cost := Batch(d.params, len(bufs), per)
	d.account(func(s *DeviceStats) {
		s.Reads += int64(len(bufs))
		s.BytesRead += bytesTotal
		s.Busy += cost
	})
	d.clock.Advance(cost)
	return cost, nil
}

// Discard drops a byte range, releasing resident blocks (TRIM). Partial
// blocks at the edges are zeroed rather than released.
func (d *MemDevice) Discard(off, length int64) {
	if off < 0 || length <= 0 {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	bs := int64(d.params.BlockSize)
	end := off + length
	for pos := off; pos < end; {
		blk := pos / bs
		bo := pos % bs
		span := bs - bo
		if span > end-pos {
			span = end - pos
		}
		if b, ok := d.blocks[blk]; ok {
			if bo == 0 && span == bs {
				delete(d.blocks, blk)
				d.used -= bs
			} else {
				zero(b[bo : bo+span])
			}
		}
		pos += span
	}
}

// Sync implements Device. The cost models a full-latency round trip.
func (d *MemDevice) Sync() (time.Duration, error) {
	d.mu.RLock()
	closed := d.closed
	d.mu.RUnlock()
	if closed {
		return 0, ErrClosed
	}
	cost := d.params.Latency
	d.account(func(s *DeviceStats) {
		s.Syncs++
		s.Busy += cost
	})
	d.clock.Advance(cost)
	return cost, nil
}

func (d *MemDevice) account(f func(*DeviceStats)) {
	d.mu.Lock()
	f(&d.stats)
	d.mu.Unlock()
}

func zero(p []byte) {
	for i := range p {
		p[i] = 0
	}
}

// Batch models a group of I/Os issued concurrently at the device's
// queue depth: the wall-clock cost of n operations of individual cost c
// is n*c divided by the queue depth, but never less than one operation.
func Batch(p DeviceParams, n int, each time.Duration) time.Duration {
	if n <= 0 {
		return 0
	}
	qd := p.QueueDepth
	if qd < 1 {
		qd = 1
	}
	total := time.Duration(n) * each / time.Duration(qd)
	if total < each {
		total = each
	}
	return total
}

// String describes the device for logs and harness output.
func (d *MemDevice) String() string {
	return fmt.Sprintf("%s(%s)", d.params.Name, d.params.Class)
}
