package netback

import (
	"errors"
	"net"
	"testing"

	"aurora/internal/core"
	"aurora/internal/objstore"
	"aurora/internal/storage"
)

// serveReplica runs ServeReplica in the background and reports its
// result on the returned channel.
func serveReplica(recv *Receiver, conn net.Conn) chan error {
	done := make(chan error, 1)
	go func() {
		_, err := recv.ServeReplica(conn)
		done <- err
	}()
	return done
}

func TestReplicaAcksAndResume(t *testing.T) {
	src := newMachine()
	dst := newMachine()
	p, g := spawn(t, src)
	_ = p

	// Local durability plus an acknowledged replica.
	dev := storage.NewMemDevice(storage.ParamsOptaneNVMe, src.clock)
	sb := core.NewStoreBackend(objstore.Create(dev, src.clock), src.k.Mem, src.clock)
	src.o.Attach(g, sb)
	rb := NewReplicaBackend(src.clock)
	src.o.Attach(g, rb)

	recv := NewReceiver(dst.k.Mem, dst.clock)
	local, remote := net.Pipe()
	done := serveReplica(recv, remote)
	floor, err := rb.Connect(local, g.ID)
	if err != nil {
		t.Fatal(err)
	}
	if floor != 0 {
		t.Fatalf("fresh replica floor = %d, want 0", floor)
	}

	for i := 0; i < 3; i++ {
		src.k.Run(3)
		if _, err := src.o.Checkpoint(g, core.CheckpointOpts{}); err != nil {
			t.Fatal(err)
		}
	}
	if err := src.o.Sync(g); err != nil {
		t.Fatal(err)
	}
	if img, err := recv.Latest(g.ID); err != nil || img.Epoch != 3 {
		t.Fatalf("replica after 3 epochs: img=%v err=%v", img, err)
	}
	if rb.SentBytes() == 0 {
		t.Fatal("replica sent no bytes")
	}

	// The connection drops. The local store keeps the group advancing
	// (degraded durability) while the replica queues missed epochs.
	local.Close()
	if err := <-done; err != nil {
		t.Fatalf("serve after hangup: %v", err)
	}
	for i := 0; i < 2; i++ {
		src.k.Run(3)
		if _, err := src.o.Checkpoint(g, core.CheckpointOpts{}); err != nil {
			t.Fatal(err)
		}
	}
	err = src.o.Sync(g)
	if err == nil {
		t.Fatal("Sync succeeded with replica disconnected")
	}
	if !errors.Is(err, ErrDisconnected) {
		t.Fatalf("Sync err = %v, want ErrDisconnected", err)
	}
	if got := g.Durable(); got != 5 {
		t.Fatalf("durable = %d during outage, want 5", got)
	}
	sawSick := false
	for _, info := range g.Health() {
		if info.Name == "replica" {
			sawSick = info.State != core.BackendHealthy && info.Pending == 2
		}
	}
	if !sawSick {
		t.Fatalf("replica health during outage = %+v", g.Health())
	}

	// Reconnect: the handshake reports the receiver's last contiguous
	// epoch, and a resync replays only what the outage missed.
	local, remote = net.Pipe()
	done = serveReplica(recv, remote)
	floor, err = rb.Connect(local, g.ID)
	if err != nil {
		t.Fatal(err)
	}
	if floor != 3 {
		t.Fatalf("resume floor = %d, want 3", floor)
	}
	if err := src.o.Resync(g); err != nil {
		t.Fatal(err)
	}
	if img, err := recv.Latest(g.ID); err != nil || img.Epoch != 5 {
		t.Fatalf("replica after resync: img=%v err=%v", img, err)
	}
	for _, info := range g.Health() {
		if info.Name == "replica" {
			if info.State != core.BackendHealthy || info.Pending != 0 {
				t.Fatalf("replica not recovered: %+v", info)
			}
			if info.Resyncs != 2 {
				t.Fatalf("resyncs = %d, want 2", info.Resyncs)
			}
		}
	}

	// The primary dies; the standby restores the acked replica chain.
	img, err := recv.Latest(g.ID)
	if err != nil {
		t.Fatal(err)
	}
	ng, _, err := dst.o.RestoreImage(img, 0, core.RestoreOpts{Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	np, _ := dst.k.Process(ng.PIDs()[0])
	var c [1]byte
	np.ReadMem(np.HeapBase(), c[:])
	if c[0] != 15 {
		t.Fatalf("standby counter = %d, want 15", c[0])
	}

	local.Close()
	if err := <-done; err != nil {
		t.Fatalf("serve at shutdown: %v", err)
	}
}

func TestReplicaFlushWhileDisconnected(t *testing.T) {
	src := newMachine()
	_, g := spawn(t, src)
	rb := NewReplicaBackend(src.clock)
	src.o.Attach(g, rb)

	src.k.Run(2)
	_, err := src.o.Checkpoint(g, core.CheckpointOpts{})
	if err != nil {
		t.Fatal(err)
	}
	err = src.o.Sync(g)
	if err == nil {
		t.Fatal("Sync succeeded with no connection ever made")
	}
	if !errors.Is(err, ErrDisconnected) {
		t.Fatalf("err = %v, want ErrDisconnected", err)
	}
}

func TestReplicaFloorSkipsAckedEpochs(t *testing.T) {
	src := newMachine()
	dst := newMachine()
	_, g := spawn(t, src)
	rb := NewReplicaBackend(src.clock)
	src.o.Attach(g, rb)

	recv := NewReceiver(dst.k.Mem, dst.clock)
	local, remote := net.Pipe()
	done := serveReplica(recv, remote)
	if _, err := rb.Connect(local, g.ID); err != nil {
		t.Fatal(err)
	}
	src.k.Run(2)
	if _, err := src.o.Checkpoint(g, core.CheckpointOpts{}); err != nil {
		t.Fatal(err)
	}
	if err := src.o.Sync(g); err != nil {
		t.Fatal(err)
	}
	sent := rb.SentBytes()

	// Reconnect with the receiver already holding epoch 1: the floor
	// makes a re-flush of that epoch a no-op on the wire.
	local.Close()
	<-done
	local, remote = net.Pipe()
	done = serveReplica(recv, remote)
	floor, err := rb.Connect(local, g.ID)
	if err != nil {
		t.Fatal(err)
	}
	if floor != 1 {
		t.Fatalf("floor = %d, want 1", floor)
	}
	if d, err := rb.Flush(g.LastImage()); err != nil || d != 0 {
		t.Fatalf("re-flush below floor: d=%v err=%v", d, err)
	}
	if rb.SentBytes() != sent {
		t.Fatalf("bytes sent grew across a floor skip: %d -> %d", sent, rb.SentBytes())
	}

	local.Close()
	<-done
}

func TestReplicaHandshakeValidation(t *testing.T) {
	rb := NewReplicaBackend(storage.NewClock())
	local, remote := net.Pipe()
	defer local.Close()
	go func() {
		// A peer that answers hello with garbage.
		typ, _, _ := readFrame(remote)
		if typ == frameHello {
			writeFrame(remote, frameDelta, []byte{1})
		}
		remote.Close()
	}()
	if _, err := rb.Connect(local, 1); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("bad handshake err = %v, want ErrBadFrame", err)
	}
	rb.Disconnect()
	if _, err := rb.Flush(&core.Image{Group: 1, Epoch: 9}); !errors.Is(err, ErrDisconnected) {
		t.Fatalf("flush on dead replica err = %v", err)
	}
}
