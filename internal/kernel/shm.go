package kernel

import (
	"sync"

	"aurora/internal/vm"
)

// SysVShm is a System V shared memory segment: a named VM object that
// any process may attach. Because the backing pages live in one object
// shared by all attachments, Aurora's checkpoint COW preserves sharing
// across a checkpoint — the scenario that breaks under fork-style COW.
type SysVShm struct {
	oid  uint64
	Key  int
	Size int64
	Obj  *vm.Object
}

// OID implements Object.
func (s *SysVShm) OID() uint64 { return s.oid }

// Kind implements Object.
func (s *SysVShm) Kind() Kind { return KindSysVShm }

// EncodeTo implements Object: metadata only; the pages travel as data.
func (s *SysVShm) EncodeTo(e *Encoder) {
	e.U64(s.oid)
	e.I64(int64(s.Key))
	e.I64(s.Size)
	e.U64(s.Obj.ID)
}

// ShmGet finds or creates the segment with the given key.
func (k *Kernel) ShmGet(key int, size int64) (*SysVShm, error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	if s, ok := k.shm[key]; ok {
		return s, nil
	}
	size = vm.RoundUpPage(size)
	s := &SysVShm{
		oid:  k.nextOIDLocked(),
		Key:  key,
		Size: size,
		Obj:  vm.NewObject(shmName(key), size),
	}
	k.shm[key] = s
	k.objects[s.oid] = s
	return s, nil
}

func shmName(key int) string { return "shm:" + itoa(key) }

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var b [24]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}

// ShmAttach maps the segment into the process's address space as a
// shared mapping and returns the attachment address.
func (k *Kernel) ShmAttach(p *Process, s *SysVShm) (vm.Addr, error) {
	m, err := p.Space.Map(0, s.Size, vm.ProtRead|vm.ProtWrite, s.Obj, 0, true, s.Obj.Name)
	if err != nil {
		return 0, err
	}
	if k.Pager != nil {
		k.Pager.Register(s.Obj)
	}
	k.Clock.Advance(k.Costs.Syscall)
	return m.Start, nil
}

// ShmDetach unmaps the segment from the process.
func (k *Kernel) ShmDetach(p *Process, addr vm.Addr, s *SysVShm) error {
	k.Clock.Advance(k.Costs.Syscall)
	return p.Space.Unmap(addr, s.Size)
}

// ShmRemove deletes the segment key (attached mappings keep the
// object alive until unmapped, as with IPC_RMID).
func (k *Kernel) ShmRemove(key int) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	s, ok := k.shm[key]
	if !ok {
		return ErrNoSuchObject
	}
	delete(k.shm, key)
	delete(k.objects, s.oid)
	return nil
}

// ShmSegments lists all live segments.
func (k *Kernel) ShmSegments() []*SysVShm {
	k.mu.Lock()
	defer k.mu.Unlock()
	out := make([]*SysVShm, 0, len(k.shm))
	for _, s := range k.shm {
		out = append(out, s)
	}
	return out
}

// restoreShm reinstates a segment; the VM object is patched in by the
// restorer using the recorded object ID.
func (k *Kernel) restoreShm(d *Decoder, lookupObj func(uint64) *vm.Object) (*SysVShm, error) {
	s := &SysVShm{oid: d.U64(), Key: int(d.I64()), Size: d.I64()}
	objID := d.U64()
	if err := d.Finish("sysvshm"); err != nil {
		return nil, err
	}
	s.Obj = lookupObj(objID)
	if s.Obj == nil {
		return nil, ErrCorrupt
	}
	k.mu.Lock()
	k.shm[s.Key] = s
	k.objects[s.oid] = s
	k.mu.Unlock()
	return s, nil
}

// Msg is one System V message.
type Msg struct {
	Type int64
	Data []byte
}

// SysVMsgQueue is a System V message queue.
type SysVMsgQueue struct {
	oid    uint64
	Key    int
	kernel *Kernel

	mu   sync.Mutex
	msgs []Msg
}

// OID implements Object.
func (q *SysVMsgQueue) OID() uint64 { return q.oid }

// Kind implements Object.
func (q *SysVMsgQueue) Kind() Kind { return KindSysVMsgQueue }

// EncodeTo implements Object: the queued messages are checkpoint state.
func (q *SysVMsgQueue) EncodeTo(e *Encoder) {
	q.mu.Lock()
	defer q.mu.Unlock()
	e.U64(q.oid)
	e.I64(int64(q.Key))
	e.U64(uint64(len(q.msgs)))
	for _, m := range q.msgs {
		e.I64(m.Type)
		e.Bytes2(m.Data)
	}
}

// MsgGet finds or creates the queue with the given key.
func (k *Kernel) MsgGet(key int) *SysVMsgQueue {
	k.mu.Lock()
	defer k.mu.Unlock()
	if q, ok := k.msgq[key]; ok {
		return q
	}
	q := &SysVMsgQueue{oid: k.nextOIDLocked(), Key: key, kernel: k}
	k.msgq[key] = q
	k.objects[q.oid] = q
	return q
}

// Send enqueues a message.
func (q *SysVMsgQueue) Send(typ int64, data []byte) {
	q.mu.Lock()
	q.msgs = append(q.msgs, Msg{Type: typ, Data: append([]byte(nil), data...)})
	q.mu.Unlock()
	q.kernel.Clock.Advance(q.kernel.Costs.Syscall)
}

// Recv dequeues the first message of the given type (0 = any).
func (q *SysVMsgQueue) Recv(typ int64) (Msg, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for i, m := range q.msgs {
		if typ == 0 || m.Type == typ {
			q.msgs = append(q.msgs[:i], q.msgs[i+1:]...)
			q.kernel.Clock.Advance(q.kernel.Costs.Syscall)
			return m, nil
		}
	}
	return Msg{}, ErrWouldBlock
}

// Len returns the number of queued messages.
func (q *SysVMsgQueue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.msgs)
}

// MsgQueues lists all live queues.
func (k *Kernel) MsgQueues() []*SysVMsgQueue {
	k.mu.Lock()
	defer k.mu.Unlock()
	out := make([]*SysVMsgQueue, 0, len(k.msgq))
	for _, q := range k.msgq {
		out = append(out, q)
	}
	return out
}

// restoreMsgQueue reinstates a message queue with its messages.
func (k *Kernel) restoreMsgQueue(d *Decoder) (*SysVMsgQueue, error) {
	q := &SysVMsgQueue{oid: d.U64(), Key: int(d.I64()), kernel: k}
	n := d.U64()
	for i := uint64(0); i < n && d.Err() == nil; i++ {
		q.msgs = append(q.msgs, Msg{Type: d.I64(), Data: d.Bytes2()})
	}
	if err := d.Finish("sysvmsgq"); err != nil {
		return nil, err
	}
	k.mu.Lock()
	k.msgq[q.Key] = q
	k.objects[q.oid] = q
	k.mu.Unlock()
	return q, nil
}
