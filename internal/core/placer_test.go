package core_test

// Placement churn coverage for core.Placer: failure-domain
// anti-affinity at placement time, infeasible fleets rejected with the
// typed error, store-kill evacuation storms (typed ErrEvacuating while
// queued, bounded concurrency, bit-identical state on the new primary,
// exactly one primary claim at max generation across every store),
// first-class drain, pressure-driven rebalance, and the two adversarial
// interleavings the issue pins: a store killed mid-rebalance and a
// drain issued during an evacuation storm. Seeds 1/7/42 drive the
// fault-injected variants.

import (
	"errors"
	"fmt"
	"testing"

	"aurora/internal/core"
	"aurora/internal/netback"
	"aurora/internal/objstore"
	"aurora/internal/storage"
	"aurora/internal/vm"

	"aurora/internal/kernel"
)

// placeRig is a small fleet wired through the production
// netback.Directory, with per-store fault devices so tests can kill a
// store (fd.Down) or bound its capacity.
type placeRig struct {
	t      *testing.T
	placer *core.Placer
	nodes  []*core.StoreNode
	fds    map[string]*storage.FaultDevice
	kerns  map[string]*kernel.Kernel
	next   int
}

// placeRigConfig shapes the fleet.
type placeRigConfig struct {
	stores   int
	domains  int // 0: max(2, stores/2)
	seed     int64
	capBlks  int64 // nonzero: bound each store's device capacity
	writeErr float64
	readErr  float64
	links    netback.LinkFaultConfig
	placer   core.PlacerConfig
}

func newPlaceRig(t *testing.T, cfg placeRigConfig) *placeRig {
	t.Helper()
	r := &placeRig{
		t:     t,
		fds:   make(map[string]*storage.FaultDevice),
		kerns: make(map[string]*kernel.Kernel),
	}
	cfg.links.Seed = cfg.seed
	r.placer = core.NewPlacer(netback.NewDirectory(cfg.links), cfg.placer)
	domains := cfg.domains
	if domains == 0 {
		domains = cfg.stores / 2
		if domains < 2 {
			domains = cfg.stores
		}
	}
	for i := 0; i < cfg.stores; i++ {
		name := fmt.Sprintf("store%d", i)
		clock := storage.NewClock()
		k := kernel.NewWith(clock, vm.NewPhysMem(0))
		o := core.NewOrchestrator(k)
		o.FlushWorkers = 1
		params := storage.ParamsOptaneNVMe
		if cfg.capBlks > 0 {
			params.Capacity = cfg.capBlks * objstore.BlockSize
		}
		fd := storage.NewFaultDevice(storage.NewMemDevice(params, clock), clock,
			storage.FaultConfig{Seed: cfg.seed*1000003 + int64(i)*7919, WriteErr: cfg.writeErr, ReadErr: cfg.readErr})
		sn := &core.StoreNode{
			Name:   name,
			Domain: fmt.Sprintf("rack%d", i%domains),
			O:      o,
			SB:     core.NewStoreBackend(objstore.Create(fd, clock), k.Mem, clock),
			Sup:    core.NewSupervisor(o, core.SupervisorConfig{}),
		}
		if err := r.placer.AddStore(sn); err != nil {
			t.Fatal(err)
		}
		r.nodes = append(r.nodes, sn)
		r.fds[name] = fd
		r.kerns[name] = k
	}
	return r
}

// place spawns one counter workload through the placer.
func (r *placeRig) place() *core.Placement {
	r.t.Helper()
	name := fmt.Sprintf("app%d", r.next)
	r.next++
	pl, err := r.placer.Place(name, func(n *core.StoreNode) (*core.Group, error) {
		p, err := n.O.K.Spawn(0, name)
		if err != nil {
			return nil, err
		}
		p.SetProgram(&migTestCounter{addr: p.HeapBase()})
		return n.O.Persist(name, p)
	})
	if err != nil {
		r.t.Fatalf("placing %s: %v", name, err)
	}
	return pl
}

// load runs steps quanta on pl's primary, checkpoints, and syncs
// durable; returns the counter value the checkpoint pinned.
func (r *placeRig) load(pl *core.Placement, steps int) uint64 {
	r.t.Helper()
	n := pl.Primary()
	if _, err := r.kerns[n.Name].Run(steps); err != nil {
		r.t.Fatal(err)
	}
	c := counterOnNode(r.t, n, pl.Group())
	if _, err := n.O.Checkpoint(pl.Group(), core.CheckpointOpts{}); err != nil {
		r.t.Fatal(err)
	}
	if err := r.placer.SyncDurable(pl.Lineage); err != nil {
		r.t.Fatal(err)
	}
	return c
}

func counterOnNode(t *testing.T, n *core.StoreNode, g *core.Group) uint64 {
	t.Helper()
	return counterOn(t, &migMach{k: n.O.K, o: n.O}, g)
}

// freeze pins every placement's live state: read the counter,
// checkpoint, sync durable — with no kernel stepping in between, so
// the recorded value, the live value, and the durable image all agree
// (kernel.Run is round-robin over a node's whole process table, so a
// load on one placement advances its neighbors' counters past their
// last checkpoints).
func (r *placeRig) freeze(pls []*core.Placement, counters map[uint64]uint64) {
	r.t.Helper()
	for _, pl := range pls {
		cur, err := r.placer.Lookup(pl.Lineage)
		if err != nil {
			r.t.Fatal(err)
		}
		c := counterOnNode(r.t, cur.Primary(), cur.Group())
		if _, err := cur.Primary().O.Checkpoint(cur.Group(), core.CheckpointOpts{}); err != nil {
			r.t.Fatal(err)
		}
		if err := r.placer.SyncDurable(pl.Lineage); err != nil {
			r.t.Fatal(err)
		}
		counters[pl.Lineage] = c
	}
}

// busiest returns the store holding the most of pls' primaries — the
// kill victim that produces the deepest evacuation storm.
func busiest(pls []*core.Placement) *core.StoreNode {
	counts := make(map[*core.StoreNode]int)
	for _, pl := range pls {
		counts[pl.Primary()]++
	}
	var best *core.StoreNode
	for n, c := range counts {
		if best == nil || c > counts[best] || (c == counts[best] && n.Name < best.Name) {
			best = n
		}
	}
	return best
}

// killAndHeal downs the named store's device, polls the placer until
// the storm drains, and returns the evacuation events. wantEvacuating
// asserts the typed mid-storm Lookup error was observable for one of
// the given lineages.
func (r *placeRig) killAndHeal(victim string, residents []uint64, wantEvacuating bool) []core.PlacerEvent {
	r.t.Helper()
	r.fds[victim].Down()
	sawEvacuating := false
	var evs []core.PlacerEvent
	for poll := 0; poll < 64; poll++ {
		for _, ev := range r.placer.Poll() {
			if ev.Kind == "evac-failed" && !errors.Is(ev.Err, core.ErrNoFeasiblePlacement) {
				r.t.Fatalf("evacuating lineage %d: %v", ev.Lineage, ev.Err)
			}
			if ev.Kind == "evacuated" || ev.Kind == "repaired" {
				evs = append(evs, ev)
			}
		}
		evac, repair := r.placer.QueueDepths()
		if evac > 0 {
			for _, lin := range residents {
				if _, err := r.placer.Lookup(lin); errors.Is(err, core.ErrEvacuating) {
					sawEvacuating = true
				}
			}
		}
		vn, err := r.placer.Node(victim)
		if err != nil {
			r.t.Fatal(err)
		}
		if vn.State() == core.StoreDown && evac == 0 && repair == 0 {
			break
		}
	}
	if evac, repair := r.placer.QueueDepths(); evac != 0 || repair != 0 {
		r.t.Fatalf("storm did not drain: evac=%d repair=%d", evac, repair)
	}
	if wantEvacuating && !sawEvacuating {
		r.t.Fatal("no Lookup surfaced ErrEvacuating mid-storm")
	}
	return evs
}

// assertInvariants checks anti-affinity and the
// exactly-one-primary-at-max-generation fence for every live lineage
// across every store in the fleet, dead ones included.
func (r *placeRig) assertInvariants() {
	r.t.Helper()
	if v := r.placer.AntiAffinityViolations(); len(v) != 0 {
		r.t.Fatalf("anti-affinity violated: %v", v)
	}
	for _, pl := range r.placer.Placements() {
		if _, err := r.placer.Lookup(pl.Lineage); err != nil {
			continue
		}
		var maxGen uint64
		var claims int
		for _, sn := range r.nodes {
			if gen, ok := sn.SB.Store().PrimaryGen(pl.Lineage); ok {
				if gen > maxGen {
					maxGen, claims = gen, 1
				} else if gen == maxGen {
					claims++
				}
			}
		}
		if claims != 1 {
			r.t.Fatalf("lineage %d: %d primary claims at max generation %d, want exactly 1", pl.Lineage, claims, maxGen)
		}
	}
}

// TestPlacerAntiAffinity: placements spread across stores by load and
// never co-locate a lineage's copies in one failure domain.
func TestPlacerAntiAffinity(t *testing.T) {
	r := newPlaceRig(t, placeRigConfig{stores: 4, seed: 1})
	perStore := make(map[string]int)
	for i := 0; i < 8; i++ {
		pl := r.place()
		perStore[pl.Primary().Name]++
		if len(pl.Replicas()) != 1 {
			t.Fatalf("placement %d: %d replicas, want 1", i, len(pl.Replicas()))
		}
		if pl.Primary().Domain == pl.Replicas()[0].Domain {
			t.Fatalf("placement %d: primary and replica share domain %s", i, pl.Primary().Domain)
		}
	}
	// Exact counts depend on occupancy tiebreaks (placing writes a seed
	// checkpoint, shifting fractions between picks); the scheduling
	// property is that load lands everywhere, not in one hot spot.
	for _, sn := range r.nodes {
		if perStore[sn.Name] < 1 || perStore[sn.Name] > 3 {
			t.Fatalf("load not spread: %v", perStore)
		}
	}
	r.assertInvariants()
}

// TestPlacerNoFeasiblePlacement: a fleet without enough distinct
// active failure domains refuses placement with the typed error.
func TestPlacerNoFeasiblePlacement(t *testing.T) {
	r := newPlaceRig(t, placeRigConfig{stores: 2, domains: 1, seed: 1})
	_, err := r.placer.Place("app", func(n *core.StoreNode) (*core.Group, error) {
		t.Fatal("start ran despite infeasible fleet")
		return nil, nil
	})
	if !errors.Is(err, core.ErrNoFeasiblePlacement) {
		t.Fatalf("err = %v, want ErrNoFeasiblePlacement", err)
	}
}

// TestPlacerEvacuation: a killed store's residents are re-homed by
// standby promotion with state bit-identical and the fleet invariants
// intact; queued lineages surface ErrEvacuating while the bounded
// evacuation queue drains. Seeds 1/7/42 with link and store faults.
func TestPlacerEvacuation(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			r := newPlaceRig(t, placeRigConfig{
				stores: 4, seed: seed,
				writeErr: 0.01, readErr: 0.005,
				links:  netback.LinkFaultConfig{Drop: 0.02, Dup: 0.01, Corrupt: 0.01},
				placer: core.PlacerConfig{EvacConcurrency: 1, Retries: 8, DownAfter: 5},
			})
			var pls []*core.Placement
			counters := make(map[uint64]uint64)
			for i := 0; i < 8; i++ {
				pls = append(pls, r.place())
			}
			for _, pl := range pls {
				counters[pl.Lineage] = r.load(pl, 6)
			}
			victim := busiest(pls)
			var residents []uint64
			for _, pl := range pls {
				if pl.Primary() == victim {
					residents = append(residents, pl.Lineage)
				}
			}
			if len(residents) < 2 {
				t.Fatalf("victim %s holds %d primaries, need ≥ 2 to observe the queue", victim.Name, len(residents))
			}
			evs := r.killAndHeal(victim.Name, residents, true)
			evacuated := 0
			for _, ev := range evs {
				if ev.Kind == "evacuated" {
					evacuated++
					if ev.TTR <= 0 {
						t.Fatalf("lineage %d: TTR %v", ev.Lineage, ev.TTR)
					}
				}
			}
			if evacuated != len(residents) {
				t.Fatalf("evacuated %d of %d residents", evacuated, len(residents))
			}
			for _, lin := range residents {
				pl, err := r.placer.Lookup(lin)
				if err != nil {
					t.Fatalf("lineage %d unroutable after heal: %v", lin, err)
				}
				if pl.Primary() == victim {
					t.Fatalf("lineage %d still resident on dead %s", lin, victim.Name)
				}
				if got := counterOnNode(t, pl.Primary(), pl.Group()); got != counters[lin] {
					t.Fatalf("lineage %d: counter %d after evacuation, want %d", lin, got, counters[lin])
				}
			}
			r.assertInvariants()
			// The fleet keeps taking checkpoints after the heal.
			for _, pl := range pls {
				cur, err := r.placer.Lookup(pl.Lineage)
				if err != nil {
					continue
				}
				before := cur.Group().Durable()
				r.load(cur, 4)
				if cur.Group().Durable() <= before {
					t.Fatalf("lineage %d: durable stuck at %d after heal", pl.Lineage, before)
				}
			}
			r.assertInvariants()
		})
	}
}

// TestPlacerDrain: a planned decommission empties the store through
// live migration and fences it; re-draining and draining a fenced
// store are typed errors.
func TestPlacerDrain(t *testing.T) {
	r := newPlaceRig(t, placeRigConfig{stores: 4, seed: 7})
	var pls []*core.Placement
	counters := make(map[uint64]uint64)
	for i := 0; i < 6; i++ {
		pl := r.place()
		pls = append(pls, pl)
		r.load(pl, 5)
	}
	r.freeze(pls, counters)
	target := pls[0].Primary()
	evs, err := r.placer.Drain(target)
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	migrated := 0
	for _, ev := range evs {
		if ev.Kind == "migrated" {
			migrated++
		}
	}
	if migrated == 0 {
		t.Fatal("drain moved nothing")
	}
	if target.State() != core.StoreFenced {
		t.Fatalf("state %s after drain, want fenced", target.State())
	}
	for _, pl := range pls {
		cur, err := r.placer.Lookup(pl.Lineage)
		if err != nil {
			t.Fatalf("lineage %d: %v", pl.Lineage, err)
		}
		if cur.Primary() == target {
			t.Fatalf("lineage %d still resident on drained %s", pl.Lineage, target.Name)
		}
		for _, rep := range cur.Replicas() {
			if rep == target {
				t.Fatalf("lineage %d still replicates to drained %s", pl.Lineage, target.Name)
			}
		}
		if got := counterOnNode(t, cur.Primary(), cur.Group()); got != counters[pl.Lineage] {
			t.Fatalf("lineage %d: counter %d after drain, want %d", pl.Lineage, got, counters[pl.Lineage])
		}
	}
	r.assertInvariants()
	if _, err := r.placer.Drain(target); !errors.Is(err, core.ErrNoFeasiblePlacement) {
		t.Fatalf("draining a fenced store: err = %v, want ErrNoFeasiblePlacement", err)
	}
}

// TestPlacerRebalance: a store over the space high-watermark sheds its
// heaviest lineage to the emptiest compatible store, state intact.
func TestPlacerRebalance(t *testing.T) {
	r := newPlaceRig(t, placeRigConfig{
		stores: 4, seed: 42, capBlks: 256,
		placer: core.PlacerConfig{HighWater: 0.04},
	})
	var pls []*core.Placement
	for i := 0; i < 4; i++ {
		pls = append(pls, r.place())
	}
	// Fatten the first placement until its store crosses the (tiny)
	// watermark.
	heavy := pls[0]
	p, err := heavy.Primary().O.K.Process(heavy.Group().PIDs()[0])
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, vm.PageSize)
	for pg := 1; pg <= 8; pg++ {
		for i := range buf {
			buf[i] = byte(pg*13 + i)
		}
		if err := p.WriteMem(p.HeapBase()+vm.Addr(pg*vm.PageSize), buf); err != nil {
			t.Fatal(err)
		}
	}
	want := r.load(heavy, 5)
	from := heavy.Primary()
	evs, err := r.placer.Rebalance()
	if err != nil {
		t.Fatalf("rebalance: %v", err)
	}
	moved := false
	for _, ev := range evs {
		if ev.Kind == "rebalanced" && ev.Lineage == heavy.Lineage {
			moved = true
		}
	}
	if !moved {
		t.Fatalf("pressure did not move the heavy lineage: %+v", evs)
	}
	cur, err := r.placer.Lookup(heavy.Lineage)
	if err != nil {
		t.Fatal(err)
	}
	if cur.Primary() == from {
		t.Fatal("heavy lineage still on the pressured store")
	}
	if got := counterOnNode(t, cur.Primary(), cur.Group()); got != want {
		t.Fatalf("counter %d after rebalance, want %d", got, want)
	}
	r.assertInvariants()
}

// TestPlacerKillStoreMidRebalance: a store dies between rebalance
// rounds; the evacuation storm and the remaining pressure moves must
// both complete without breaking fencing or anti-affinity.
func TestPlacerKillStoreMidRebalance(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			r := newPlaceRig(t, placeRigConfig{
				stores: 4, seed: seed, capBlks: 256,
				placer: core.PlacerConfig{HighWater: 0.04, EvacConcurrency: 1},
			})
			var pls []*core.Placement
			counters := make(map[uint64]uint64)
			for i := 0; i < 6; i++ {
				pl := r.place()
				pls = append(pls, pl)
				r.load(pl, 5)
			}
			// Fatten two lineages so their stores cross the watermark
			// and the first rebalance round has real work queued.
			buf := make([]byte, vm.PageSize)
			for _, heavy := range pls[:2] {
				p, err := heavy.Primary().O.K.Process(heavy.Group().PIDs()[0])
				if err != nil {
					t.Fatal(err)
				}
				for pg := 1; pg <= 8; pg++ {
					for i := range buf {
						buf[i] = byte(pg*13 + i)
					}
					if err := p.WriteMem(p.HeapBase()+vm.Addr(pg*vm.PageSize), buf); err != nil {
						t.Fatal(err)
					}
				}
			}
			r.freeze(pls, counters)
			// First rebalance round: every store is over the tiny
			// watermark, so each pressured store sheds one lineage.
			if _, err := r.placer.Rebalance(); err != nil {
				t.Fatalf("rebalance: %v", err)
			}
			r.assertInvariants()
			// Mid-rebalance kill: down the busiest store before the
			// next round.
			resident := make(map[*core.StoreNode]int)
			for _, pl := range pls {
				cur, err := r.placer.Lookup(pl.Lineage)
				if err != nil {
					t.Fatal(err)
				}
				resident[cur.Primary()]++
			}
			victim := r.nodes[0]
			for _, sn := range r.nodes {
				if resident[sn] > resident[victim] {
					victim = sn
				}
			}
			var residents []uint64
			for _, pl := range pls {
				if cur, err := r.placer.Lookup(pl.Lineage); err == nil && cur.Primary() == victim {
					residents = append(residents, pl.Lineage)
				}
			}
			r.killAndHeal(victim.Name, residents, false)
			// The interrupted rebalance resumes against the surviving
			// fleet.
			if _, err := r.placer.Rebalance(); err != nil {
				t.Fatalf("rebalance after kill: %v", err)
			}
			for _, pl := range pls {
				cur, err := r.placer.Lookup(pl.Lineage)
				if err != nil {
					t.Fatalf("lineage %d: %v", pl.Lineage, err)
				}
				if cur.Primary() == victim {
					t.Fatalf("lineage %d resident on dead %s", pl.Lineage, victim.Name)
				}
				if got := counterOnNode(t, cur.Primary(), cur.Group()); got != counters[pl.Lineage] {
					t.Fatalf("lineage %d: counter %d, want %d", pl.Lineage, got, counters[pl.Lineage])
				}
			}
			r.assertInvariants()
		})
	}
}

// TestPlacerDrainDuringEvacuation: a drain issued while an evacuation
// storm is still queued must complete alongside it — residents of the
// dead store land on neither the dead nor the draining store, and the
// drained store fences.
func TestPlacerDrainDuringEvacuation(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			r := newPlaceRig(t, placeRigConfig{
				stores: 4, seed: seed,
				placer: core.PlacerConfig{EvacConcurrency: 1, DownAfter: 2},
			})
			var pls []*core.Placement
			counters := make(map[uint64]uint64)
			for i := 0; i < 8; i++ {
				pl := r.place()
				pls = append(pls, pl)
				r.load(pl, 5)
			}
			r.freeze(pls, counters)
			victim := busiest(pls)
			var residents []uint64
			for _, pl := range pls {
				if pl.Primary() == victim {
					residents = append(residents, pl.Lineage)
				}
			}
			if len(residents) < 2 {
				t.Fatalf("victim %s holds %d primaries, need ≥ 2 for a mid-storm drain", victim.Name, len(residents))
			}
			r.fds[victim.Name].Down()
			// Poll until the death is declared and the storm is mid-queue.
			for poll := 0; poll < 16; poll++ {
				r.placer.Poll()
				if evac, _ := r.placer.QueueDepths(); victim.State() == core.StoreDown && evac > 0 {
					break
				}
			}
			if evac, _ := r.placer.QueueDepths(); evac == 0 {
				t.Fatal("no evacuation backlog to interleave the drain with")
			}
			// Drain a surviving store in a different domain than the
			// victim, so anti-affinity stays feasible on the remaining
			// pair.
			var drainee *core.StoreNode
			for _, sn := range r.nodes {
				if sn != victim && sn.State() == core.StoreActive && sn.Domain != victim.Domain {
					drainee = sn
					break
				}
			}
			if _, err := r.placer.Drain(drainee); err != nil {
				t.Fatalf("drain during evacuation: %v", err)
			}
			if drainee.State() != core.StoreFenced {
				t.Fatalf("drainee state %s, want fenced", drainee.State())
			}
			// Finish the evacuation storm.
			for poll := 0; poll < 64; poll++ {
				r.placer.Poll()
				if evac, repair := r.placer.QueueDepths(); evac == 0 && repair == 0 {
					break
				}
			}
			if evac, repair := r.placer.QueueDepths(); evac != 0 || repair != 0 {
				t.Fatalf("storm did not drain: evac=%d repair=%d", evac, repair)
			}
			for _, pl := range pls {
				cur, err := r.placer.Lookup(pl.Lineage)
				if err != nil {
					t.Fatalf("lineage %d: %v", pl.Lineage, err)
				}
				if cur.Primary() == victim || cur.Primary() == drainee {
					t.Fatalf("lineage %d resident on %s after heal", pl.Lineage, cur.Primary().Name)
				}
				if got := counterOnNode(t, cur.Primary(), cur.Group()); got != counters[pl.Lineage] {
					t.Fatalf("lineage %d: counter %d, want %d", pl.Lineage, got, counters[pl.Lineage])
				}
			}
			r.assertInvariants()
		})
	}
}
