package slsfs

import (
	"aurora/internal/codec"
	"aurora/internal/kernel"
	"aurora/internal/objstore"
	"aurora/internal/vm"
)

// File is an open Aurora file. It implements kernel.OpenFile, so
// simulated processes use ordinary descriptors; the descriptor's
// offset lives in the kernel's open-file description, as POSIX
// specifies.
type File struct {
	fs *FS
	in *Inode
}

// OID implements kernel.Object: the inode number doubles as the
// store OID.
func (f *File) OID() uint64 { return f.in.Ino }

// Kind implements kernel.Object.
func (f *File) Kind() kernel.Kind { return KindFSFile }

// EncodeTo implements kernel.Object. File contents live in the file
// system's own snapshots; a descriptor checkpoint needs only the
// inode reference.
func (f *File) EncodeTo(e *kernel.Encoder) {
	e.U64(f.in.Ino)
	e.I64(f.in.Size())
}

// Ino returns the inode number.
func (f *File) Ino() uint64 { return f.in.Ino }

// Size returns the file size.
func (f *File) Size() int64 { return f.in.Size() }

// Truncate resizes the file.
func (f *File) Truncate(size int64) {
	f.in.truncate(size)
	f.fs.markNSDirty()
}

// ReadAt reads at an explicit offset.
func (f *File) ReadAt(p []byte, off int64) (int, error) { return f.fs.readAt(f.in, p, off) }

// WriteAt writes at an explicit offset.
func (f *File) WriteAt(p []byte, off int64) (int, error) { return f.fs.writeAt(f.in, p, off) }

// ReadFile implements kernel.OpenFile using the description's offset.
func (f *File) ReadFile(ctx kernel.IOCtx, p []byte) (int, error) {
	var off int64
	if ctx.Desc != nil {
		off = ctx.Desc.Offset
	}
	n, err := f.fs.readAt(f.in, p, off)
	if ctx.Desc != nil {
		ctx.Desc.Offset += int64(n)
	}
	if n == 0 && err == nil && len(p) > 0 {
		return 0, kernel.ErrWouldBlock // at EOF; stream callers poll
	}
	return n, err
}

// WriteFile implements kernel.OpenFile using the description's offset
// (or appending with OAppend).
func (f *File) WriteFile(ctx kernel.IOCtx, p []byte) (int, error) {
	var off int64
	if ctx.Desc != nil {
		if ctx.Desc.Flags&kernel.OAppend != 0 {
			off = f.in.Size()
		} else {
			off = ctx.Desc.Offset
		}
	}
	n, err := f.fs.writeAt(f.in, p, off)
	if ctx.Desc != nil && ctx.Desc.Flags&kernel.OAppend == 0 {
		ctx.Desc.Offset += int64(n)
	}
	return n, err
}

// CloseFile implements kernel.OpenFile: drop the persistent open
// reference; an unlinked inode dies with its last open reference.
func (f *File) CloseFile() error {
	in := f.in
	in.mu.Lock()
	in.OpenRefs--
	in.metaDirty = true
	drop := in.Nlink <= 0 && in.OpenRefs <= 0
	in.mu.Unlock()
	if drop {
		f.fs.dropInode(in.Ino)
	}
	f.fs.markNSDirty()
	return nil
}

// writeAt writes through the buffer cache, copying up partially
// overwritten pages from the store backing first.
func (fs *FS) writeAt(in *Inode, p []byte, off int64) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	first := off >> vm.PageShift
	last := (off + int64(len(p)) - 1) >> vm.PageShift
	if off&vm.PageMask != 0 || first == last {
		if err := in.ensureBacking(fs, first); err != nil {
			return 0, err
		}
	}
	if (off+int64(len(p)))&vm.PageMask != 0 && last != first {
		if err := in.ensureBacking(fs, last); err != nil {
			return 0, err
		}
	}
	return in.WriteAt(p, off)
}

// readAt reads through the buffer cache, falling back to the inode's
// store backing for pages not yet cached (lazy clone/restore paging).
func (fs *FS) readAt(in *Inode, p []byte, off int64) (int, error) {
	in.mu.Lock()
	size := in.size
	in.mu.Unlock()
	if off >= size {
		return 0, nil
	}
	if max := size - off; int64(len(p)) > max {
		p = p[:max]
	}
	n := 0
	for n < len(p) {
		idx := (off + int64(n)) >> vm.PageShift
		po := (off + int64(n)) & vm.PageMask
		span := int(vm.PageSize - po)
		if span > len(p)-n {
			span = len(p) - n
		}
		pg, err := fs.loadPage(in, idx)
		if err != nil {
			return n, err
		}
		if pg != nil {
			copy(p[n:n+span], pg[po:po+int64(span)])
		} else {
			for i := n; i < n+span; i++ {
				p[i] = 0
			}
		}
		n += span
	}
	return n, nil
}

// loadPage returns the cached page, faulting it in from the store
// backing when necessary. A nil page reads as zeros.
func (fs *FS) loadPage(in *Inode, idx int64) ([]byte, error) {
	in.mu.Lock()
	if pg, ok := in.pages[idx]; ok {
		in.mu.Unlock()
		return pg, nil
	}
	ref, ok := in.backing[idx]
	in.mu.Unlock()
	if !ok {
		return nil, nil
	}
	data, err := fs.store.ReadBlock(ref)
	if err != nil {
		return nil, err
	}
	in.mu.Lock()
	// Another reader may have faulted it in meanwhile.
	if pg, ok := in.pages[idx]; ok {
		in.mu.Unlock()
		return pg, nil
	}
	in.pages[idx] = data
	in.mu.Unlock()
	return data, nil
}

// ensureBacking makes WriteAt copy-up correct for lazily loaded files:
// a partial page write must first fault the page in.
func (in *Inode) ensureBacking(fs *FS, idx int64) error {
	in.mu.Lock()
	_, cached := in.pages[idx]
	_, backed := in.backing[idx]
	in.mu.Unlock()
	if cached || !backed {
		return nil
	}
	_, err := fs.loadPage(in, idx)
	return err
}

// decodeFileRef parses the descriptor-checkpoint form of a file.
func decodeFileRef(payload []byte) (uint64, error) {
	d := codec.NewDecoder(payload)
	ino := d.U64()
	d.I64() // size, informational
	if err := d.Finish("fileref"); err != nil {
		return 0, err
	}
	return ino, nil
}

// blockRefs converts the inode's current state into store references:
// cached-and-dirty pages must be written by the caller; clean backing
// pages are returned for zero-copy re-reference.
func (in *Inode) blockRefs() map[int64]objstore.BlockRef {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[int64]objstore.BlockRef, len(in.backing))
	for idx, ref := range in.backing {
		out[idx] = ref
	}
	return out
}
