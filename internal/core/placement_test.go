package core_test

// The store-kill placement chaos gate: a 4-store fleet with hundreds
// of placed lineages under open-loop checkpoint load, one store killed
// permanently, every resident re-homed with bit-identical state and
// the fleet invariants intact, then a full drain of one survivor. The
// engine lives in internal/bench (PlacementChaosRun); this binds it to
// the seeds and fault rates `make placecheck` pins. Scale is
// environment-gated like the fleet harness: plain `go test` runs a
// smoke-sized fleet, placecheck sets AURORA_PLACE_GROUPS=256.

import (
	"fmt"
	"os"
	"strconv"
	"testing"
	"time"

	"aurora/internal/bench"
)

// placementGroupTotal returns the number of lineages each cell places.
func placementGroupTotal() int {
	if s := os.Getenv("AURORA_PLACE_GROUPS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return 48
}

func runPlacementChaos(t *testing.T, seed int64) {
	rates := []float64{0, 0.01, 0.05}
	groups := placementGroupTotal()
	if testing.Short() {
		rates = []float64{0.01}
		groups = 12
	}
	for _, rate := range rates {
		rate := rate
		t.Run(fmt.Sprintf("rate%g", rate*100), func(t *testing.T) {
			rep, err := bench.PlacementChaosRun(bench.PlacementChaosConfig{
				Seed:            seed,
				Stores:          4,
				Groups:          groups,
				Drain:           true,
				EvacConcurrency: 2,
				LinkDrop:        rate,
				LinkDup:         rate / 2,
				LinkCorrupt:     rate / 2,
				StoreWriteErr:   rate / 5,
				StoreReadErr:    rate / 5,
			})
			if err != nil {
				t.Fatalf("placement chaos seed %d rate %g: %v", seed, rate, err)
			}
			if rep.Placed != groups {
				t.Fatalf("placed %d of %d", rep.Placed, groups)
			}
			if rep.Residents == 0 || rep.Evacuated != rep.Residents {
				t.Fatalf("evacuated %d of %d residents on %s", rep.Evacuated, rep.Residents, rep.Victim)
			}
			if rep.Violations != 0 {
				t.Fatalf("%d anti-affinity violations after heal", rep.Violations)
			}
			// Each evacuated resident is verified twice: live state on
			// the new primary and a scratch-machine restore from its
			// store. The drain leg re-verifies what it moved.
			if rep.RestoresVerified < 2*rep.Residents {
				t.Fatalf("restores verified = %d, want ≥ %d", rep.RestoresVerified, 2*rep.Residents)
			}
			if rep.Residents > 2 && rep.Evacuating == 0 {
				t.Fatalf("queue depth %d never surfaced ErrEvacuating", rep.Residents)
			}
			if rep.EvacTTRp99 <= 0 || rep.EvacTTRp99 >= time.Second {
				t.Fatalf("evacuation TTR p99 = %v, want sub-second", rep.EvacTTRp99)
			}
			if rep.Drained == 0 {
				t.Fatalf("drain leg moved nothing")
			}
			if rep.FinalDurable == 0 {
				t.Fatalf("fleet made no post-heal progress")
			}
		})
	}
}

func TestPlacementChaosSeed1(t *testing.T)  { runPlacementChaos(t, 1) }
func TestPlacementChaosSeed7(t *testing.T)  { runPlacementChaos(t, 7) }
func TestPlacementChaosSeed42(t *testing.T) { runPlacementChaos(t, 42) }
