package interp

import (
	"testing"

	"aurora/internal/kernel"
	"aurora/internal/vm"
)

// sumProgram assembles: sum = 0; for i = 1..n { sum += i }; store sum
// at dataAddr; halt.
func sumProgram(n, dataAddr uint32) []byte {
	var a Asm
	a.Emit(OpLi, 4, 0, 0)   // r4 = sum = 0
	a.Emit(OpLi, 5, 0, 1)   // r5 = i = 1
	a.Emit(OpLi, 6, 0, n+1) // r6 = n+1
	loop := a.Len()
	a.Emit(OpAdd, 4, 4, 5)        // sum += i
	a.Emit(OpAddi, 5, 5, 1)       // i++
	bne := a.Emit(OpBne, 5, 6, 0) // if i != n+1 goto loop
	a.Emit(OpLi, 7, 0, dataAddr)  // r7 = dataAddr
	a.Emit(OpSt, 4, 7, 0)         // mem[r7] = sum
	a.Emit(OpHalt, 0, 0, 0)
	_ = bne
	a.Patch(bne, uint32(0x0040_0000+loop))
	return a.Code()
}

func TestInterpRunsToCompletion(t *testing.T) {
	k := kernel.New()
	p, _ := k.Spawn(0, "sum")
	dataAddr := uint32(p.HeapBase())
	if _, err := Load(k, p, sumProgram(100, dataAddr)); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(10000); err != nil {
		t.Fatal(err)
	}
	if p.State() != kernel.ProcZombie {
		t.Fatalf("program did not halt: %v", p.State())
	}
	var b [8]byte
	p.ReadMem(vm.Addr(dataAddr), b[:])
	got := uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24
	if got != 5050 {
		t.Fatalf("sum = %d, want 5050", got)
	}
}

func TestInterpMidExecutionStateIsInRegisters(t *testing.T) {
	k := kernel.New()
	p, _ := k.Spawn(0, "sum")
	if _, err := Load(k, p, sumProgram(1_000_000, uint32(p.HeapBase()))); err != nil {
		t.Fatal(err)
	}
	// Run a few quanta: the program is mid-loop.
	k.Run(50)
	t0 := p.Threads[0]
	if t0.Regs.PC == uint64(0x0040_0000) {
		t.Fatal("PC did not advance")
	}
	if t0.Regs.GPR[4] == 0 {
		t.Fatal("accumulator empty mid-loop")
	}
	// The full execution state is Regs + memory: copying registers to
	// a fresh thread on a cloned space must continue identically.
	sum := t0.Regs.GPR[4]
	i := t0.Regs.GPR[5]
	if sum != (i-1)*i/2 {
		t.Fatalf("invariant broken: sum=%d i=%d", sum, i)
	}
}

func TestInterpWriteSyscall(t *testing.T) {
	k := kernel.New()
	p, _ := k.Spawn(0, "writer")
	r, w, _ := k.NewPipe(p)

	// Hand the read end to a separate reader process before the writer
	// exits (exit closes the writer's descriptors).
	reader, _ := k.Spawn(0, "reader")
	rfd, _ := p.FDs.Get(r)
	readerFD, _ := reader.FDs.Install(k, rfd.File, kernel.ORdOnly)

	msgAddr := uint32(p.HeapBase())
	p.WriteMem(vm.Addr(msgAddr), []byte("hi"))
	var a Asm
	a.Emit(OpLi, 1, 0, uint32(w)) // r1 = fd
	a.Emit(OpLi, 2, 0, msgAddr)   // r2 = buf
	a.Emit(OpLi, 3, 0, 2)         // r3 = len
	a.Emit(OpSys, SysWrite, 0, 0)
	a.Emit(OpHalt, 0, 0, 0)
	if _, err := Load(k, p, a.Code()); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(100); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	n, err := k.Read(reader, readerFD, buf)
	if err != nil || string(buf[:n]) != "hi" {
		t.Fatalf("pipe read = %q, %v", buf[:n], err)
	}
}

func TestInterpBadOpcodeKillsProcess(t *testing.T) {
	k := kernel.New()
	p, _ := k.Spawn(0, "bad")
	var a Asm
	a.Emit(255, 0, 0, 0)
	Load(k, p, a.Code())
	if _, err := k.Run(10); err == nil {
		t.Fatal("bad opcode should surface an error")
	}
	if p.State() != kernel.ProcZombie {
		t.Fatal("process should be killed")
	}
}

func TestInterpYield(t *testing.T) {
	k := kernel.New()
	p, _ := k.Spawn(0, "yielder")
	var a Asm
	a.Emit(OpAddi, 4, 4, 1)
	a.Emit(OpSys, SysYield, 0, 0)
	a.Emit(OpJmp, 0, 0, 0x0040_0000)
	Load(k, p, a.Code())
	k.Run(10) // each quantum ends at the yield
	if p.Threads[0].Regs.GPR[4] != 10 {
		t.Fatalf("yield count = %d, want 10", p.Threads[0].Regs.GPR[4])
	}
}

func TestInstrEncodeDecode(t *testing.T) {
	in := Instr{Op: OpAddi, A: 3, B: 7, Imm: 0xdeadbeef}
	got := Decode(in.Encode())
	if got != in {
		t.Fatalf("decode(encode) = %+v", got)
	}
}

func TestLoad8Store8(t *testing.T) {
	k := kernel.New()
	p, _ := k.Spawn(0, "bytes")
	heap := uint32(p.HeapBase())
	var a Asm
	a.Emit(OpLi, 1, 0, heap)
	a.Emit(OpLi, 2, 0, 0x41) // 'A'
	a.Emit(OpSt8, 2, 1, 0)
	a.Emit(OpLd8, 3, 1, 0)
	a.Emit(OpSt8, 3, 1, 1) // copy to heap+1
	a.Emit(OpHalt, 0, 0, 0)
	Load(k, p, a.Code())
	if _, err := k.Run(100); err != nil {
		t.Fatal(err)
	}
	b := make([]byte, 2)
	p.ReadMem(vm.Addr(heap), b)
	if string(b) != "AA" {
		t.Fatalf("memory = %q", b)
	}
}

func TestArithmeticOps(t *testing.T) {
	k := kernel.New()
	p, _ := k.Spawn(0, "math")
	heap := uint32(p.HeapBase())
	var a Asm
	a.Emit(OpLi, 1, 0, 20)
	a.Emit(OpLi, 2, 0, 7)
	a.Emit(OpSub, 3, 1, 2) // 13
	a.Emit(OpMul, 4, 3, 2) // 91
	a.Emit(OpMov, 5, 4, 0) // 91
	a.Emit(OpLi, 6, 0, heap)
	a.Emit(OpSt, 5, 6, 0)
	a.Emit(OpHalt, 0, 0, 0)
	Load(k, p, a.Code())
	if _, err := k.Run(100); err != nil {
		t.Fatal(err)
	}
	var b [8]byte
	p.ReadMem(vm.Addr(heap), b[:])
	if b[0] != 91 {
		t.Fatalf("result = %d, want 91", b[0])
	}
}

func TestBltBranch(t *testing.T) {
	k := kernel.New()
	p, _ := k.Spawn(0, "blt")
	heap := uint32(p.HeapBase())
	var a Asm
	a.Emit(OpLi, 1, 0, 3)
	a.Emit(OpLi, 2, 0, 5)
	blt := a.Emit(OpBlt, 1, 2, 0) // taken: 3 < 5
	a.Emit(OpLi, 3, 0, 111)       // skipped
	taken := a.Len()
	a.Patch(blt, 0x0040_0000+uint32(taken))
	a.Emit(OpLi, 4, 0, heap)
	a.Emit(OpSt8, 3, 4, 0) // stores r3 = 0 (the Li was skipped)
	a.Emit(OpHalt, 0, 0, 0)
	Load(k, p, a.Code())
	if _, err := k.Run(100); err != nil {
		t.Fatal(err)
	}
	var b [1]byte
	p.ReadMem(vm.Addr(heap), b[:])
	if b[0] != 0 {
		t.Fatalf("branch not taken: r3 = %d", b[0])
	}
}

func TestBadSyscallKillsProcess(t *testing.T) {
	k := kernel.New()
	p, _ := k.Spawn(0, "bad")
	var a Asm
	a.Emit(OpSys, 99, 0, 0)
	Load(k, p, a.Code())
	if _, err := k.Run(5); err == nil {
		t.Fatal("bad syscall should error")
	}
}

// TestDeterministicExecution: two kernels running the same program for
// the same quanta produce bit-identical register files — the property
// underpinning reproducible checkpoints and record/replay.
func TestDeterministicExecution(t *testing.T) {
	run := func() kernel.Regs {
		k := kernel.New()
		p, _ := k.Spawn(0, "det")
		Load(k, p, sumProgram(1_000_000, uint32(p.HeapBase())))
		k.Run(123)
		return p.Threads[0].Regs
	}
	r1, r2 := run(), run()
	if r1 != r2 {
		t.Fatalf("divergent executions:\n%+v\n%+v", r1, r2)
	}
}

func TestQuantumConfigurable(t *testing.T) {
	k := kernel.New()
	p, _ := k.Spawn(0, "q")
	Load(k, p, sumProgram(1_000_000, uint32(p.HeapBase())))
	p.SetProgram(&Program{Quantum: 1})
	before := p.Threads[0].Regs.PC
	k.Run(1)
	if p.Threads[0].Regs.PC != before+InstrSize {
		t.Fatal("quantum=1 should execute exactly one instruction")
	}
}
