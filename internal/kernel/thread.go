package kernel

// Regs is the simulated CPU register file of a thread. Checkpointing
// CPU state means saving exactly this structure; the interpreter
// programs in package interp execute against it, so a restored
// checkpoint resumes mid-loop with the same PC and registers.
type Regs struct {
	PC   uint64     // program counter
	SP   uint64     // stack pointer
	GPR  [16]uint64 // general purpose registers
	Flag uint64     // condition flags
}

// ThreadState is the scheduling state of one thread.
type ThreadState uint8

// Thread states.
const (
	ThreadRunnable ThreadState = iota
	ThreadBlocked
	ThreadDone
)

// Thread is a kernel thread: a register file bound to a process.
type Thread struct {
	oid   uint64
	TID   int
	Proc  *Process
	Regs  Regs
	State ThreadState
	// WaitChan names what a blocked thread is sleeping on, for ps.
	WaitChan string
}

// OID implements Object.
func (t *Thread) OID() uint64 { return t.oid }

// Kind implements Object.
func (t *Thread) Kind() Kind { return KindThread }

// EncodeTo implements Object: full register state plus scheduling
// state, which is what lets a restore resume execution exactly where
// the checkpoint stopped it.
func (t *Thread) EncodeTo(e *Encoder) {
	e.U64(t.oid)
	e.I64(int64(t.TID))
	e.U64(t.Regs.PC)
	e.U64(t.Regs.SP)
	for _, r := range t.Regs.GPR {
		e.U64(r)
	}
	e.U64(t.Regs.Flag)
	e.U8(uint8(t.State))
	e.Str(t.WaitChan)
}

// decodeThread parses a serialized thread (process linkage is patched
// by the restorer).
func decodeThread(d *Decoder) (*Thread, error) {
	t := &Thread{oid: d.U64(), TID: int(d.I64())}
	t.Regs.PC = d.U64()
	t.Regs.SP = d.U64()
	for i := range t.Regs.GPR {
		t.Regs.GPR[i] = d.U64()
	}
	t.Regs.Flag = d.U64()
	t.State = ThreadState(d.U8())
	t.WaitChan = d.Str()
	if err := d.Finish("thread"); err != nil {
		return nil, err
	}
	return t, nil
}

// CreateThread adds a thread to a process.
func (k *Kernel) CreateThread(p *Process, regs Regs) *Thread {
	t := &Thread{oid: k.NextOID(), Proc: p, Regs: regs}
	p.mu.Lock()
	t.TID = p.PID*100 + len(p.Threads)
	p.Threads = append(p.Threads, t)
	p.mu.Unlock()
	k.mu.Lock()
	k.objects[t.oid] = t
	k.runQueue = append(k.runQueue, t)
	k.mu.Unlock()
	return t
}
