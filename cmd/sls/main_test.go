package main

import (
	"bufio"
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

// runScript executes semicolon-separated commands in one session and
// returns the combined output.
func runScript(t *testing.T, script string) string {
	t.Helper()
	var buf bytes.Buffer
	out := bufio.NewWriter(&buf)
	s := newSession(out)
	for _, line := range strings.Split(script, ";") {
		if !s.exec(strings.TrimSpace(line)) {
			break
		}
	}
	out.Flush()
	return buf.String()
}

func TestCLIWorkflow(t *testing.T) {
	got := runScript(t,
		"boot counter; run 20; persist 1 app; attach app nvme; checkpoint app first; ps")
	for _, want := range []string{
		"booted counter, pid 1",
		"persistence group 1 (app)",
		"attached store:",
		"ckpt[full]",
		"GROUP",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
}

func TestCLIRestore(t *testing.T) {
	got := runScript(t,
		"boot counter; persist 1 app; attach app memory; checkpoint app; run 50; restore app")
	if !strings.Contains(got, "restored as group 2") {
		t.Fatalf("restore output:\n%s", got)
	}
}

func TestCLISendRecv(t *testing.T) {
	file := filepath.Join(t.TempDir(), "app.aur")
	got := runScript(t,
		"boot counter; run 7; persist 1 app; attach app nvme; checkpoint app; send app "+file)
	if !strings.Contains(got, "sent group 1") {
		t.Fatalf("send output:\n%s", got)
	}
	// A brand new session receives and resumes the application.
	got2 := runScript(t, "recv "+file+"; ps; run 10")
	if !strings.Contains(got2, "received as group 1") {
		t.Fatalf("recv output:\n%s", got2)
	}
	if !strings.Contains(got2, "counter") {
		t.Fatalf("received process missing from ps:\n%s", got2)
	}
}

func TestCLIDetach(t *testing.T) {
	got := runScript(t,
		"boot counter; persist 1 app; attach app nvme; detach app nvme; checkpoint app")
	if !strings.Contains(got, "detached") {
		t.Fatalf("detach output:\n%s", got)
	}
}

func TestCLISyncAndQueueColumn(t *testing.T) {
	got := runScript(t,
		"boot counter; persist 1 app; attach app nvme; checkpoint app; sync app; ps")
	if !strings.Contains(got, "durable through epoch 1") {
		t.Fatalf("sync output:\n%s", got)
	}
	if !strings.Contains(got, "QUEUE") {
		t.Fatalf("ps missing QUEUE column:\n%s", got)
	}
}

func TestCLIErrors(t *testing.T) {
	got := runScript(t, "persist 99 x; attach nope nvme; checkpoint nope; restore nope; frobnicate")
	if strings.Count(got, "error:") < 3 {
		t.Fatalf("expected errors for bad arguments:\n%s", got)
	}
	if !strings.Contains(got, "unknown command") {
		t.Fatalf("unknown command not reported:\n%s", got)
	}
}

func TestCLIUsageLines(t *testing.T) {
	got := runScript(t, "persist; attach; detach; checkpoint; restore; send; recv; stat; help")
	if strings.Count(got, "usage:") < 6 {
		t.Fatalf("usage hints missing:\n%s", got)
	}
	if !strings.Contains(got, "single level store") {
		t.Fatalf("help text missing:\n%s", got)
	}
}

func TestCLIRedisBoot(t *testing.T) {
	got := runScript(t, "boot redis; stat 1")
	if !strings.Contains(got, "booted mini-redis") || !strings.Contains(got, "heap") {
		t.Fatalf("redis boot output:\n%s", got)
	}
}

func TestCLIScrub(t *testing.T) {
	got := runScript(t,
		"boot counter; run 5; persist 1 app; attach app nvme; attach app ssd; checkpoint app; sync app; scrub nvme ssd")
	if !strings.Contains(got, "scrub nvme:") || !strings.Contains(got, "0 corrupt") {
		t.Fatalf("scrub output:\n%s", got)
	}
	if !strings.Contains(got, "0 lost") {
		t.Fatalf("clean store reported losses:\n%s", got)
	}
}

func TestCLIScrubErrors(t *testing.T) {
	got := runScript(t, "scrub; scrub nope; scrub memory")
	if !strings.Contains(got, "usage: scrub") {
		t.Fatalf("scrub usage missing:\n%s", got)
	}
	if !strings.Contains(got, `unknown backend "nope"`) {
		t.Fatalf("bad backend not reported:\n%s", got)
	}
	if !strings.Contains(got, "not store-backed") {
		t.Fatalf("memory backend accepted for scrub:\n%s", got)
	}
}

func TestCLIHealthColumn(t *testing.T) {
	got := runScript(t,
		"boot counter; persist 1 app; attach app nvme; checkpoint app; sync app; ps")
	if !strings.Contains(got, "HEALTH") {
		t.Fatalf("ps missing HEALTH column:\n%s", got)
	}
	if !strings.Contains(got, "ok") {
		t.Fatalf("healthy backend not shown as ok:\n%s", got)
	}
	// A group with no backends renders a placeholder.
	got2 := runScript(t, "boot counter; persist 1 app; ps")
	if !strings.Contains(got2, "-") {
		t.Fatalf("backendless group health:\n%s", got2)
	}
}
