package kernel

import (
	"errors"
	"fmt"
	"sync"
)

// Program is the driver of a simulated process. Two styles exist:
//
//   - interpreter programs (package interp) whose entire execution
//     state is CPU registers plus simulated memory, demonstrating
//     exact mid-execution checkpoint/restore; and
//   - native application drivers (mini-Redis, the LSM store) that keep
//     all durable state in simulated memory and return a small
//     Snapshot of driver-local control state.
//
// On restore, the orchestrator re-instantiates the driver through the
// factory registered for its name and reattaches it to the restored
// process, whose memory and registers already hold the application
// state.
type Program interface {
	// ProgName identifies the program in checkpoints; a factory must
	// be registered under this name for the process to be restorable.
	ProgName() string
	// Step runs one scheduling quantum on thread t. Returning
	// ErrThreadExit retires the thread; other errors are fatal to the
	// process.
	Step(k *Kernel, p *Process, t *Thread) error
	// Snapshot returns driver-local state to embed in the checkpoint.
	Snapshot() []byte
}

// ErrThreadExit is returned by Program.Step when the thread finishes.
var ErrThreadExit = errors.New("kernel: thread exit")

// ProgramFactory reconstructs a program driver during restore.
// The process's memory and registers are already restored when the
// factory runs.
type ProgramFactory func(k *Kernel, p *Process, state []byte) (Program, error)

var (
	progMu        sync.RWMutex
	progFactories = make(map[string]ProgramFactory)
)

// RegisterProgram registers a restore factory for a program name.
// Later registrations replace earlier ones, which keeps tests
// independent.
func RegisterProgram(name string, f ProgramFactory) {
	progMu.Lock()
	defer progMu.Unlock()
	progFactories[name] = f
}

// LookupProgram finds a registered factory.
func LookupProgram(name string) (ProgramFactory, bool) {
	progMu.RLock()
	defer progMu.RUnlock()
	f, ok := progFactories[name]
	return f, ok
}

// Step runs one quantum of one runnable thread, round-robin. It
// returns false when nothing is runnable.
func (k *Kernel) Step() (bool, error) {
	t := k.nextRunnable()
	if t == nil {
		return false, nil
	}
	p := t.Proc
	prog := p.Program()
	if prog == nil {
		t.State = ThreadBlocked
		t.WaitChan = "noprog"
		return true, nil
	}
	err := prog.Step(k, p, t)
	switch {
	case err == nil:
		return true, nil
	case errors.Is(err, ErrThreadExit):
		t.State = ThreadDone
		if k.liveThreads(p) == 0 {
			k.Exit(p, 0)
		}
		return true, nil
	default:
		k.Exit(p, 1)
		return true, fmt.Errorf("pid %d (%s): %w", p.PID, p.Name, err)
	}
}

// Run steps the scheduler up to n quanta, stopping early when the
// system goes idle. It returns the number of quanta executed and the
// first program error, if any.
func (k *Kernel) Run(n int) (int, error) {
	var firstErr error
	for i := 0; i < n; i++ {
		ran, err := k.Step()
		if err != nil && firstErr == nil {
			firstErr = err
		}
		if !ran {
			return i, firstErr
		}
	}
	return n, firstErr
}

// nextRunnable rotates the run queue to the next runnable thread of a
// running process. Threads that retired for good — ThreadDone, or any
// thread of a zombie process — are dropped from the queue here rather
// than rotated: a fleet's worth of exited and reaped processes must
// not tax every future quantum with corpse entries.
func (k *Kernel) nextRunnable() *Thread {
	k.mu.Lock()
	defer k.mu.Unlock()
	for n := len(k.runQueue); n > 0; n-- {
		t := k.runQueue[0]
		k.runQueue = k.runQueue[1:]
		if t.State == ThreadDone || t.Proc.State() == ProcZombie {
			t.State = ThreadDone
			continue
		}
		k.runQueue = append(k.runQueue, t)
		if t.State == ThreadRunnable && t.Proc.State() == ProcRunning {
			return t
		}
	}
	return nil
}

// liveThreads counts a process's non-retired threads.
func (k *Kernel) liveThreads(p *Process) int {
	n := 0
	for _, t := range p.Threads {
		if t.State != ThreadDone {
			n++
		}
	}
	return n
}

// StopProcess pauses a process at a serialization barrier. The cost of
// the stop (one context switch) is charged to the clock; the caller
// (the orchestrator) accumulates these into the application stop time.
func (k *Kernel) StopProcess(p *Process) {
	if p.State() == ProcRunning {
		p.setState(ProcStopped)
		k.stopCount.Add(1)
		k.Clock.Advance(k.Costs.CtxSwitch)
	}
}

// ResumeProcess releases a process stopped at a barrier.
func (k *Kernel) ResumeProcess(p *Process) {
	if p.State() == ProcStopped {
		p.setState(ProcRunning)
		k.stopCount.Add(-1)
		k.Clock.Advance(k.Costs.CtxSwitch)
	}
}

// StoppedCount reports how many processes are currently held at
// barriers (used by tests and the ps command).
func (k *Kernel) StoppedCount() int64 { return k.stopCount.Load() }

// AddRunnable enqueues a restored thread into the scheduler.
func (k *Kernel) AddRunnable(t *Thread) {
	k.mu.Lock()
	defer k.mu.Unlock()
	for _, q := range k.runQueue {
		if q == t {
			return
		}
	}
	k.runQueue = append(k.runQueue, t)
}

// FuncProgram adapts a plain step function into a Program; it is the
// quickest way to write test workloads. Snapshots are empty, so a
// FuncProgram is restorable only if a factory is registered for its
// name.
type FuncProgram struct {
	Name string
	Fn   func(k *Kernel, p *Process, t *Thread) error
}

// ProgName implements Program.
func (f *FuncProgram) ProgName() string { return f.Name }

// Step implements Program.
func (f *FuncProgram) Step(k *Kernel, p *Process, t *Thread) error { return f.Fn(k, p, t) }

// Snapshot implements Program.
func (f *FuncProgram) Snapshot() []byte { return nil }
