GO ?= go

.PHONY: check build vet test race bench faultcheck recoverycheck chaoscheck spacecheck fleetcheck quorumcheck migratecheck placecheck scalecheck

## check: full gate — build, vet, race-enabled tests, seeded fault
## matrix, crash-recovery harness, whole-system chaos sweep, space-
## pressure survival, fleet scale, quorum replication, live migration,
## multi-store placement, elastic autoscaling
check:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test -race ./...
	$(MAKE) faultcheck
	$(MAKE) recoverycheck
	$(MAKE) chaoscheck
	$(MAKE) spacecheck
	$(MAKE) fleetcheck
	$(MAKE) quorumcheck
	$(MAKE) migratecheck
	$(MAKE) placecheck
	$(MAKE) scalecheck

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## faultcheck: seeded fault-matrix tests under the race detector — the
## self-healing flush pipeline, crash-consistent superblock, and replica
## resume paths driven by the fault-injecting device.
faultcheck:
	$(GO) test -race -count=1 -run 'TestFaultMatrix|TestFault|TestTorn|TestScrub|TestReplica|TestRecovery|TestQuarantine' \
		./internal/core/ ./internal/storage/ ./internal/objstore/ ./internal/netback/

## recoverycheck: validated self-healing restore under the race detector —
## crash-at-every-op harness, epoch quarantine with fallback, lazy-paging
## failover, supervisor auto-restore, bounded SwapIn retry, CLI exit codes.
recoverycheck:
	$(GO) test -race -count=1 -run 'TestRecovery|TestQuarantine|TestCLIRestore|TestRestoreExitCodes|TestCLIEpochs' \
		./internal/core/ ./internal/vm/ ./internal/netback/ ./cmd/sls/

## chaoscheck: whole-system chaos harness under the race detector —
## storage faults, link faults, crashes, a partition+heal, replica
## promotion, and a fenced stale primary composed in one seeded run
## (seeds 1, 7, 42), plus the promote CLI exit codes.
chaoscheck:
	$(GO) test -race -count=1 -run 'TestChaos|TestPromote|TestCLIPromote' \
		./internal/core/ ./cmd/sls/

## spacecheck: graceful degradation under space pressure, race-enabled —
## watermark retention GC with the reachability audit after every
## reclaimed epoch, end-to-end ENOSPC survival on a ~10-epoch device
## (seeds 1, 7, 42), admission-control shedding, the GC interleaving
## property test, and the space-composed chaos run.
spacecheck:
	$(GO) test -race -count=1 -run 'TestSpace|TestReclaimer|TestAdmission|TestFlushENOSPC|TestSyncWithReclaim|TestGCInterleaving|TestControlPlaneReserve|TestStatsLiveAndReclaimable|TestCapacityGrowthOnly|TestSetFull|TestCLIGC|TestCLIDF|TestCLISpacePressure' \
		./internal/core/ ./internal/storage/ ./internal/objstore/ ./internal/bench/ ./cmd/sls/

## fleetcheck: the fleet-scale sharded-orchestrator harness under the
## race detector — 10k groups per seed (1, 7, 42) driven through
## spawn/checkpoint/crash/restore/unpersist on the shard-worker pool,
## the determinism replay, clone dedup, goroutine-leak teardown checks,
## supervisor restart-budget edges, and the cross-group dedup GC
## property test. Plain `go test` runs the same tests at smoke scale.
fleetcheck:
	AURORA_FLEET_GROUPS=10000 $(GO) test -race -count=1 -timeout 30m \
		-run 'TestFleetSimulation|TestFleetCloneDedup|TestUnpersistWithQueuedEpochsDoesNotLeak|TestCloseReapsFleetWorkers|TestSupervisor|TestDedupCrossGroupGCInterleaving|TestCLIFleet' \
		./internal/core/ ./internal/objstore/ ./cmd/sls/

## quorumcheck: N-replica quorum replication under the race detector —
## the 500-checkpoint minority-kill chaos runs (seeds 1, 7, 42) with a
## kill+restart, a partition+heal, and quorum promotion with read-
## repair; the quorum durability/latency/floor unit tests; the typed
## quorum error round-trips; the replica-set and compact-delta
## protocol tests; and the CLI quorum/replicas verbs.
quorumcheck:
	$(GO) test -race -count=1 -timeout 20m \
		-run 'TestQuorum|TestErrQuorumLost|TestStaleGenerationUnderQuorum|TestReplicatedQuorum|TestReclaimerQuorum|TestReplicaSetQuorum|TestCompactDelta|TestCLIQuorum|TestEmitQuorumBench' \
		./internal/core/ ./internal/netback/ ./internal/bench/ ./cmd/sls/ .

## migratecheck: live migration and hot standby under the race
## detector — the planned end-to-end migration, every abort phase
## (target dead in pre-copy, mid-blackout, flaky and dead handover),
## the retry-after-abort and double-hop lineage runs, standby
## promotion after source crash, the fault-injected chaos migrations
## (seeds 1, 7, 42) with a mid-pre-copy partition, the supervisor
## fence race regressions, the typed migration-error round-trips, the
## migrate/standby/takeover CLI verbs, and the blackout/TTR
## regression gate against the committed BENCH_migrate.json baseline.
migratecheck:
	$(GO) test -race -count=1 -timeout 20m \
		-run 'TestMigrate|TestStandby|TestSupervisorRefusesFencedCrashedGroup|TestSupervisorFenceRaceMidRecover|TestSupervisorReleaseAtomicHandover|TestSupervisorRestoresUnfencedCrash|TestMigrationAbortedRoundTrip|TestMigrationErrorIsNotGenericAborted|TestCLIMigrate|TestCLIStandbyTakeover|TestMigrateBenchGate|TestEmitMigrateBench' \
		./internal/core/ ./cmd/sls/ .

## placecheck: the self-healing multi-store placement control plane
## under the race detector — failure-domain-aware spread with hard
## anti-affinity, the store-kill chaos gate at 256 lineages per cell
## (seeds 1, 7, 42 × fault rates 0/1/5%), throttled evacuation with
## ErrEvacuating surfacing, drain-during-evacuation and
## kill-mid-rebalance interleavings, the supervisor evacuation
## exemption, the stores/drain/balance CLI verbs, and the evacuation-
## TTR regression gate against the committed BENCH_placement.json
## baseline. Plain `go test` runs the same chaos cells at smoke scale.
placecheck:
	AURORA_PLACE_GROUPS=256 $(GO) test -race -count=1 -timeout 30m \
		-run 'TestPlacer|TestPlacementChaos|TestSupervisorEvacuationExemption|TestCLIStores|TestCLIDrain|TestCLIBalance|TestPlacementBenchGate|TestEmitPlacementBench' \
		./internal/core/ ./internal/netback/ ./cmd/sls/ .

## scalecheck: elastic fleet autoscaling under the race detector —
## the signal-window/hysteresis unit tests (scale-out, scale-in
## completion, both rollback paths, rebalance pacing), the scale-storm
## chaos gate at 48 lineages per cell (seeds 1, 7, 42 × fault rates
## 0/1/5%, fleet ramping 2→6→2 with a dead warm spare mid-scale-out
## and a store kill mid-scale-in), the directory wire-reset churn
## test, the autoscale/signals CLI verbs, and the convergence-time
## regression gate against the committed BENCH_autoscale.json
## baseline. Plain `go test` runs the same chaos cells at smoke scale;
## AURORA_SCALE_GROUPS overrides the cell size.
scalecheck:
	AURORA_SCALE_GROUPS=48 $(GO) test -race -count=1 -timeout 30m \
		-run 'TestAutoscaler|TestAutoscaleChaos|TestRebalanceTickPacing|TestDirectoryConcurrentChurn|TestCLIAutoscale|TestCLISignals|TestAutoscaleBenchGate|TestEmitAutoscaleBench' \
		./internal/core/ ./internal/netback/ ./cmd/sls/ .

## bench: run the paper-claim benchmarks (also refreshes BENCH_pipeline.json,
## BENCH_faults.json, BENCH_recovery.json, BENCH_chaos.json,
## BENCH_space.json, BENCH_fleet.json, BENCH_quorum.json,
## BENCH_migrate.json, BENCH_placement.json, and BENCH_autoscale.json)
bench:
	$(GO) test -bench=. -benchmem -run '^$$' .
