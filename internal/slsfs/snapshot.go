package slsfs

import (
	"fmt"

	"aurora/internal/codec"
	"aurora/internal/kernel"
	"aurora/internal/objstore"
)

// This file implements snapshots: zero-copy captures of the whole
// namespace into the object store, plus Load (mount a snapshot) and
// Clone (fork a writable file system off a snapshot without copying
// data).

// encodeNamespace serializes the directory structure, the inode
// liveness set (including unlinked-but-open orphans) and allocator
// state.
func (fs *FS) encodeNamespace() []byte {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	e := codec.NewEncoder()
	e.U64(fs.rootIno)
	e.U64(fs.nextIno)
	// Live inodes (directories carry their tables).
	e.U64(uint64(len(fs.inodes)))
	for ino, in := range fs.inodes {
		e.U64(ino)
		in.mu.Lock()
		if in.Mode == ModeDir {
			e.U8(1)
			e.U64(uint64(len(in.children)))
			for name, child := range in.children {
				e.Str(name)
				e.U64(child)
			}
		} else {
			e.U8(0)
		}
		in.mu.Unlock()
	}
	return e.Bytes()
}

// Snapshot flushes all dirty state and records a checkpoint manifest.
// Only pages dirtied since the last snapshot are written (and even
// those deduplicate); clean pages are re-referenced, never copied.
// It returns the snapshot's epoch. Concurrent snapshots serialize;
// file I/O may proceed while a snapshot runs.
func (fs *FS) Snapshot(name string) (uint64, error) {
	return fs.SnapshotOn(fs.store, name)
}

// SnapshotOn is Snapshot writing through an alternate view of the
// backing store — typically a clock-redirected view (Store.WithClock)
// so a background flusher charges snapshot I/O to its own lane. The
// view must share state with the FS's own store.
func (fs *FS) SnapshotOn(store *objstore.Store, name string) (uint64, error) {
	fs.snapMu.Lock()
	defer fs.snapMu.Unlock()

	fs.mu.Lock()
	fs.epoch++
	epoch := fs.epoch
	prev := epoch - 1
	inodes := make([]*Inode, 0, len(fs.inodes))
	for _, in := range fs.inodes {
		inodes = append(inodes, in)
	}
	fs.nsDirty = false
	fs.mu.Unlock()

	var recs []objstore.RecordKey
	for _, in := range inodes {
		key, wrote, err := fs.flushInodeOn(store, in, epoch)
		if err != nil {
			return 0, err
		}
		if wrote {
			recs = append(recs, key)
		}
	}

	// Namespace record: always written, it is small and anchors the
	// epoch.
	nsMeta := fs.encodeNamespace()
	if _, err := store.PutRecord(fs.group, nsOID, epoch, uint16(KindFSNamespace), true, nsMeta, nil, nil); err != nil {
		return 0, err
	}
	recs = append(recs, objstore.RecordKey{Group: fs.group, OID: nsOID, Epoch: epoch})

	m := &objstore.Manifest{
		Group:   fs.group,
		Epoch:   epoch,
		Name:    name,
		Records: recs,
		Roots:   []uint64{nsOID},
	}
	if epoch > 1 {
		m.Prev = prev
	}
	store.PutManifest(m)
	return epoch, nil
}

// flushInodeOn writes one inode's record for the epoch through the
// given store view. The first record of an inode is full (dirty pages
// + re-referenced backing); later records are deltas carrying only
// dirty pages.
func (fs *FS) flushInodeOn(store *objstore.Store, in *Inode, epoch uint64) (objstore.RecordKey, bool, error) {
	key := objstore.RecordKey{Group: fs.group, OID: in.Ino, Epoch: epoch}

	in.mu.Lock()
	everFlushed := in.flushedEpoch != 0
	dirtyPages := make(map[int64][]byte, len(in.dirty))
	for idx := range in.dirty {
		if pg, ok := in.pages[idx]; ok {
			dirtyPages[idx] = pg
		}
	}
	meta := fs.encodeInodeMetaLocked(in)
	nsChanged := in.metaDirty
	in.mu.Unlock()

	if everFlushed && len(dirtyPages) == 0 && !nsChanged {
		return key, false, nil // idle inode: no record this epoch
	}

	if !everFlushed {
		// Full record: dirty pages written, clean backing re-referenced
		// (zero-copy).
		clean := make(map[int64]objstore.BlockRef)
		for idx, ref := range in.blockRefs() {
			if _, isDirty := dirtyPages[idx]; !isDirty {
				clean[idx] = ref
			}
		}
		if _, err := store.PutRecordMixed(fs.group, in.Ino, epoch, uint16(KindFSFile), true, meta, dirtyPages, clean, nil); err != nil {
			return key, false, err
		}
	} else {
		if _, err := store.PutRecord(fs.group, in.Ino, epoch, uint16(KindFSFile), false, meta, dirtyPages, nil); err != nil {
			return key, false, err
		}
	}

	in.mu.Lock()
	// Flushed pages become part of the backing image; the cache keeps
	// them for reads but they are clean now.
	in.dirty = make(map[int64]bool)
	in.metaDirty = false
	in.flushedEpoch = epoch
	in.mu.Unlock()
	return key, true, nil
}

// encodeInodeMetaLocked builds the metadata payload; caller holds in.mu.
func (fs *FS) encodeInodeMetaLocked(in *Inode) []byte {
	e := codec.NewEncoder()
	e.U64(in.Ino)
	e.U8(uint8(in.Mode))
	e.I64(int64(in.Nlink))
	e.I64(int64(in.OpenRefs))
	e.I64(in.size)
	return e.Bytes()
}

// Load mounts the snapshot identified by epoch from the store,
// rebuilding the namespace and wiring every file's pages to its
// store blocks for lazy, zero-copy access.
func Load(store *objstore.Store, group, epoch uint64) (*FS, error) {
	nsMeta, kind, err := store.ResolveMeta(group, nsOID, epoch)
	if err != nil {
		return nil, fmt.Errorf("slsfs: loading namespace: %w", err)
	}
	if kernel.Kind(kind) != KindFSNamespace {
		return nil, fmt.Errorf("slsfs: namespace record has kind %d", kind)
	}
	fs := &FS{
		store:  store,
		group:  group,
		epoch:  epoch,
		inodes: make(map[uint64]*Inode),
	}

	d := codec.NewDecoder(nsMeta)
	fs.rootIno = d.U64()
	fs.nextIno = d.U64()
	type dirTable struct {
		ino     uint64
		entries map[string]uint64
	}
	var dirs []dirTable
	var files []uint64
	n := d.U64()
	for i := uint64(0); i < n && d.Err() == nil; i++ {
		ino := d.U64()
		if d.U8() == 1 {
			dt := dirTable{ino: ino, entries: make(map[string]uint64)}
			ne := d.U64()
			for j := uint64(0); j < ne && d.Err() == nil; j++ {
				name := d.Str()
				dt.entries[name] = d.U64()
			}
			dirs = append(dirs, dt)
		} else {
			files = append(files, ino)
		}
	}
	if err := d.Finish("slsfs namespace"); err != nil {
		return nil, err
	}

	loadInode := func(ino uint64) (*Inode, error) {
		meta, _, err := store.ResolveMeta(group, ino, epoch)
		if err != nil {
			return nil, fmt.Errorf("slsfs: inode %d: %w", ino, err)
		}
		in, err := decodeInodeMeta(meta)
		if err != nil {
			return nil, err
		}
		in.flushedEpoch = epoch
		if in.Mode == ModeFile {
			pages, _, err := store.ResolvePages(group, ino, epoch)
			if err == nil {
				in.backing = pages
			}
		}
		fs.inodes[ino] = in
		return in, nil
	}
	for _, ino := range files {
		if _, err := loadInode(ino); err != nil {
			return nil, err
		}
	}
	for _, dt := range dirs {
		in, err := loadInode(dt.ino)
		if err != nil {
			return nil, err
		}
		in.children = dt.entries
	}
	return fs, nil
}

// LoadNamed mounts a named snapshot.
func LoadNamed(store *objstore.Store, name string) (*FS, error) {
	m, err := store.NamedManifest(name)
	if err != nil {
		return nil, err
	}
	return Load(store, m.Group, m.Epoch)
}

// LoadLatest mounts a group's most recent snapshot.
func LoadLatest(store *objstore.Store, group uint64) (*FS, error) {
	m, err := store.LatestManifest(group)
	if err != nil {
		return nil, err
	}
	return Load(store, group, m.Epoch)
}

// Clone forks a writable file system into a new store group from an
// existing snapshot. No file data is copied: the clone's inodes
// reference the snapshot's blocks and copy up only on write. The
// clone's first snapshot re-references those blocks in its own group.
func Clone(store *objstore.Store, fromGroup, epoch, newGroup uint64) (*FS, error) {
	src, err := Load(store, fromGroup, epoch)
	if err != nil {
		return nil, err
	}
	src.group = newGroup
	src.epoch = 0
	// Every inode must flush fully into the new group on the first
	// snapshot (references, not copies).
	src.mu.Lock()
	for _, in := range src.inodes {
		in.mu.Lock()
		in.flushedEpoch = 0
		in.mu.Unlock()
	}
	src.nsDirty = true
	src.mu.Unlock()
	return src, nil
}
