package bench

import (
	"fmt"
	"time"

	"aurora/internal/core"
	"aurora/internal/kernel"
	"aurora/internal/objstore"
	"aurora/internal/storage"
	"aurora/internal/vm"
)

func init() {
	kernel.RegisterProgram("bench-recovery-touch", func(*kernel.Kernel, *kernel.Process, []byte) (kernel.Program, error) {
		return &kernel.FuncProgram{Name: "bench-recovery-touch",
			Fn: func(k *kernel.Kernel, p *kernel.Process, t *kernel.Thread) error { return nil }}, nil
	})
}

// recoveryPages is the patterned working set the recovery sweep
// demand-pages back in (beyond the counter page).
const recoveryPages = 64

// RecoveryPoint is one datapoint of the recovery sweep: a lazy restore
// demand-paging its full working set against a primary store with a
// given per-read fault probability, failing over to a clean secondary.
type RecoveryPoint struct {
	Rate          float64       // per-read injection probability on the primary
	Checkpoints   int           // epochs checkpointed before the restore
	Pages         int           // pages demand-paged back in
	TimeToRecover time.Duration // virtual time from Restore to last page resident
	Failovers     int64         // pages served by the secondary
	PagesRepaired int64         // peer pages written back onto the primary
	Retries       int64         // extra primary read attempts
	Injected      int64         // faults the device actually injected
}

func recoveryPattern(page int, seed int64) []byte {
	b := make([]byte, vm.PageSize)
	for i := range b {
		b[i] = byte(int64(page)*31 + int64(i)*7 + seed)
	}
	return b
}

// RecoverySweep measures time-to-recover for a lazy restore whose
// primary store read-faults at each given rate, with a clean secondary
// as the failover peer. Every run must end bit-correct — each
// demand-paged page is compared against what was checkpointed — or the
// sweep errors: degraded recovery may be slower, never wrong.
func RecoverySweep(ckpts int, rates []float64, seed int64) ([]RecoveryPoint, error) {
	points := make([]RecoveryPoint, 0, len(rates))
	for _, rate := range rates {
		clock := storage.NewClock()
		k := kernel.NewWith(clock, vm.NewPhysMem(0))
		o := core.NewOrchestrator(k)
		o.FlushWorkers = 1 // deterministic device-op ordering

		fd := storage.NewFaultDevice(storage.NewMemDevice(storage.ParamsOptaneNVMe, clock), clock,
			storage.FaultConfig{Seed: seed, ReadErr: rate})
		primary := core.NewStoreBackend(objstore.Create(fd, clock), k.Mem, clock)
		secondary := core.NewStoreBackend(objstore.Create(storage.NewMemDevice(storage.ParamsOptaneNVMe, clock), clock), k.Mem, clock)

		p, err := k.Spawn(0, "recovery-touch")
		if err != nil {
			return nil, err
		}
		p.SetProgram(&kernel.FuncProgram{Name: "bench-recovery-touch",
			Fn: func(k *kernel.Kernel, p *kernel.Process, t *kernel.Thread) error {
				var b [8]byte
				if err := p.ReadMem(p.HeapBase(), b[:]); err != nil {
					return err
				}
				b[0]++
				return p.WriteMem(p.HeapBase(), b[:])
			}})
		for pg := 1; pg <= recoveryPages; pg++ {
			if err := p.WriteMem(p.HeapBase()+vm.Addr(pg*vm.PageSize), recoveryPattern(pg, seed)); err != nil {
				return nil, err
			}
		}
		g, err := o.Persist("recovery-touch", p)
		if err != nil {
			return nil, err
		}
		o.Attach(g, primary)
		o.Attach(g, secondary)

		for i := 0; i < ckpts; i++ {
			if _, err := k.Run(2); err != nil {
				return nil, err
			}
			if _, err := o.Checkpoint(g, core.CheckpointOpts{}); err != nil {
				return nil, err
			}
		}
		if err := o.Sync(g); err != nil {
			return nil, fmt.Errorf("bench: recovery sweep at rate %g: sync: %w", rate, err)
		}
		var want [8]byte
		if err := p.ReadMem(p.HeapBase(), want[:]); err != nil {
			return nil, err
		}

		// Lazy restore, then demand-page the full working set back in:
		// that span is the time-to-recover under the given fault rate.
		start := clock.Now()
		ng, _, err := o.Restore(g, 0, core.RestoreOpts{Lazy: true})
		if err != nil {
			return nil, fmt.Errorf("bench: recovery sweep at rate %g: restore: %w", rate, err)
		}
		np, err := k.Process(ng.PIDs()[0])
		if err != nil {
			return nil, err
		}
		var got [8]byte
		if err := np.ReadMem(np.HeapBase(), got[:]); err != nil {
			return nil, fmt.Errorf("bench: recovery sweep at rate %g: paging counter: %w", rate, err)
		}
		if got != want {
			return nil, fmt.Errorf("bench: recovery sweep at rate %g: counter %v, want %v — recovery not bit-correct", rate, got, want)
		}
		buf := make([]byte, vm.PageSize)
		for pg := 1; pg <= recoveryPages; pg++ {
			if err := np.ReadMem(np.HeapBase()+vm.Addr(pg*vm.PageSize), buf); err != nil {
				return nil, fmt.Errorf("bench: recovery sweep at rate %g: paging page %d: %w", rate, pg, err)
			}
			ref := recoveryPattern(pg, seed)
			for i := range buf {
				if buf[i] != ref[i] {
					return nil, fmt.Errorf("bench: recovery sweep at rate %g: page %d byte %d differs — recovery not bit-correct", rate, pg, i)
				}
			}
		}
		ttr := clock.Now() - start

		stats := ng.RecoveryStats()
		points = append(points, RecoveryPoint{
			Rate:          rate,
			Checkpoints:   ckpts,
			Pages:         recoveryPages + 1,
			TimeToRecover: ttr,
			Failovers:     stats.Failovers,
			PagesRepaired: stats.PagesRepaired,
			Retries:       stats.Retries,
			Injected:      fd.InjectedCount(),
		})
	}
	return points, nil
}
