// Package objstore implements Aurora's copy-on-write object store:
// the on-disk half of the single level store.
//
// The store keeps *records* — one per kernel object per checkpoint
// epoch — consisting of a metadata extent plus page-sized data blocks.
// Its three properties come straight from the paper:
//
//   - a COW layout cheap enough for hundreds of checkpoints per second
//     (appending records never rewrites old ones, unlike WAFL/ZFS
//     snapshots);
//   - content-hash deduplication of data blocks, across epochs and
//     across unrelated applications (this is what lets serverless
//     functions be stored as small deltas over a shared runtime
//     image); and
//   - in-place garbage collection: dropping an old epoch merges its
//     still-live pages forward into the next epoch by reference, never
//     rewriting data.
//
// All index structures also serialize to the device (Sync/Open), so a
// store survives the crash-restart cycle that the SLS exists to hide.
package objstore

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"aurora/internal/storage"
	"aurora/internal/vm"
)

// Errors returned by the store.
var (
	ErrNoRecord   = errors.New("objstore: no such record")
	ErrNoManifest = errors.New("objstore: no such checkpoint")
	ErrBadMagic   = errors.New("objstore: bad superblock magic")
	// ErrCorruptBlock marks a block whose device contents no longer
	// match its content hash: silent media rot caught at read time.
	ErrCorruptBlock = errors.New("objstore: block content hash mismatch")
	// ErrStoreFull marks an operation refused because the backing device
	// is out of space. It always wraps storage.ErrOutOfSpace, so callers
	// can match either sentinel. A full store is degraded, not broken:
	// reclaiming epochs and retrying is the expected response.
	ErrStoreFull = errors.New("objstore: store device full")
)

// wrapSpace tags device out-of-space errors with ErrStoreFull so the
// flush pipeline can distinguish "no room" (reclaim and retry) from
// media failure (degrade toward down).
func wrapSpace(err error) error {
	if err != nil && errors.Is(err, storage.ErrOutOfSpace) {
		return fmt.Errorf("%w: %w", ErrStoreFull, err)
	}
	return err
}

// BlockSize is the data block granularity: one VM page.
const BlockSize = vm.PageSize

// superblock layout constants. Two alternating slots hold generation-
// stamped, checksummed superblocks so a torn publish falls back to the
// previous good generation (see persist.go).
const (
	magic     = 0x41555253 // "AURS"
	sbVersion = 5          // adds group scoping to record keys
	sbSize    = 64         // one superblock slot
	sbSlot0   = 0          // even generations
	sbSlot1   = 512        // odd generations
	dataStart = 4096       // first allocatable byte
)

// Hash is the content hash of a data block.
type Hash [32]byte

// BlockRef locates one deduplicated data block on the device.
type BlockRef struct {
	Off  int64
	Hash Hash
}

// RecordKey identifies a record: one object of one persistence group
// at one checkpoint epoch. Group scoping matters on shared stores —
// a store holding both its own primaries and backfilled chains from
// other machines sees the same small kernel OIDs and epoch numbers
// from unrelated lineages, and an unscoped key would let one group's
// flush silently overwrite another's records.
type RecordKey struct {
	Group uint64
	OID   uint64
	Epoch uint64
}

// Record is the persisted form of one kernel object at one epoch.
type Record struct {
	Group uint64
	OID   uint64
	Epoch uint64
	Kind  uint16
	// Full marks a record carrying the object's complete page set;
	// otherwise Pages is a delta over the previous epoch's record.
	Full bool
	// Meta is the object's serialized metadata.
	Meta []byte
	// Pages maps page index -> data block.
	Pages map[int64]BlockRef
	// Heat is the access-frequency snapshot used for restore prefetch.
	Heat map[int64]uint32

	metaOff int64
	metaLen int
}

// Manifest describes one checkpoint of one persistence group.
type Manifest struct {
	Group   uint64
	Epoch   uint64
	Name    string // optional user-visible checkpoint name
	Records []RecordKey
	// Roots lists the OIDs of the group's processes, the entry points
	// for restore.
	Roots []uint64
	// Prev is the previous epoch in this group's history (0 = none).
	Prev uint64
}

// Stats summarizes store occupancy for the density experiments.
type Stats struct {
	Records       int
	Manifests     int
	Blocks        int   // distinct physical blocks
	BlockBytes    int64 // physical bytes in data blocks
	LogicalBytes  int64 // bytes all records reference (pre-dedup)
	MetaBytes     int64
	DedupHits     int64 // block writes absorbed by an existing block
	BlocksFreed   int64
	EpochsDropped int64
	// LiveBytes is the physical footprint pinned by retained state:
	// referenced data blocks plus record metadata. It cannot be
	// reclaimed without dropping epochs.
	LiveBytes int64
	// ReclaimableBytes counts freed blocks still resident on the device
	// (on the free list but not yet TRIMmed): space a ReleaseSpace call
	// returns to the device without touching any retained epoch.
	ReclaimableBytes int64
	// PackBlocks counts device blocks shared by multiple small record
	// metadata extents (sub-block packing). Without packing, every
	// record costs a full block of metadata, which is what used to make
	// N clones of one deduped image cost N blocks each instead of ~0.
	PackBlocks int
	// PacksCompacted counts sparse pack blocks emptied by compaction:
	// blocks whose few surviving extents were rewritten elsewhere so
	// the block could return to the free list.
	PacksCompacted int64
}

type blockEntry struct {
	ref  BlockRef
	refs int32
}

// storeCore is the shared index state behind a Store and all of its
// clock-redirected views: one set of records, blocks, and locks.
type storeCore struct {
	mu        sync.Mutex
	syncMu    sync.Mutex // serializes Sync's write-index/publish protocol
	nextOff   int64
	freeList  []int64 // freed block offsets, reusable in place
	// trimmedFree splits freeList: entries [0:trimmedFree) have been
	// TRIMmed off the device (non-resident, still reusable), entries
	// [trimmedFree:) are freed but still resident. Not persisted: a
	// remount conservatively treats every free block as resident.
	trimmedFree int
	// idxHist tracks the extents holding the last two published index
	// generations. Slot parity means generation N overwrites N-2's
	// superblock header, so once N publishes, N-2's index extent can
	// never be needed by crash fallback again and is freed.
	idxHist []extent
	blocks    map[Hash]*blockEntry
	records   map[RecordKey]*Record
	manifests map[uint64][]*Manifest // group -> epoch-sorted manifests
	named     map[string]manifestID  // checkpoint name -> manifest
	// quarantined marks epochs that failed restore validation; they
	// are skipped by fallback resolution and persisted by Sync.
	quarantined map[manifestID]string
	// fences maps a lineage (original group ID) to the highest store
	// generation witnessed there and whether this store is the
	// lineage's primary (see fence.go).
	fences map[uint64]fenceEntry
	sbGen  uint64 // superblock generation last published
	stats  Stats
	// label is the store's placement identity (see labels.go). In-memory
	// only: the placer re-labels stores when it adopts them, and a store
	// that moves hosts should take its new home's domain, not its old one.
	label struct {
		name   string
		domain string
	}

	// Sub-block metadata packing: record metadata smaller than a block
	// bump-allocates inside a shared pack block instead of consuming a
	// whole one. packOff/packUsed describe the currently open pack
	// block; packLive counts the live extents inside every pack block
	// (keyed by block base offset) so a pack block returns to the free
	// list exactly when its last extent dies. Not persisted: rebuilt
	// from record extents on Open, which also classifies pre-packing
	// whole-block small extents as single-occupant packs with the same
	// free-at-zero behavior.
	packOff  int64
	packUsed int
	packLive map[int64]int
}

// Store is the object store over one device.
type Store struct {
	*storeCore
	dev   storage.Device
	clock *storage.Clock
	costs storage.CostModel
}

type manifestID struct {
	Group uint64
	Epoch uint64
}

// extent is a variable-length allocation on the device.
type extent struct {
	off int64
	n   int
}

// Create initializes an empty store on dev.
func Create(dev storage.Device, clock *storage.Clock) *Store {
	return &Store{
		storeCore: &storeCore{
			nextOff:     dataStart,
			blocks:      make(map[Hash]*blockEntry),
			records:     make(map[RecordKey]*Record),
			manifests:   make(map[uint64][]*Manifest),
			named:       make(map[string]manifestID),
			quarantined: make(map[manifestID]string),
			fences:      make(map[uint64]fenceEntry),
			packLive:    make(map[int64]int),
		},
		dev:   dev,
		clock: clock,
		costs: storage.DefaultCosts,
	}
}

// WithClock returns a view of the store that shares the full index and
// block state but charges hash and device costs to c. Background flush
// lanes use this so a flush overlapping the application's timeline does
// not inflate the foreground clock.
func (s *Store) WithClock(c *storage.Clock) *Store {
	return &Store{
		storeCore: s.storeCore,
		dev:       storage.Redirect(s.dev, c),
		clock:     c,
		costs:     s.costs,
	}
}

// Device exposes the backing device (used by the harness for stats).
func (s *Store) Device() storage.Device { return s.dev }

// Stats returns a snapshot of the occupancy counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Records = len(s.records)
	st.Blocks = len(s.blocks)
	st.BlockBytes = int64(len(s.blocks)) * BlockSize
	st.LiveBytes = st.BlockBytes + st.MetaBytes
	st.ReclaimableBytes = int64(len(s.freeList)-s.trimmedFree) * BlockSize
	st.PackBlocks = len(s.packLive)
	n := 0
	for _, ms := range s.manifests {
		n += len(ms)
	}
	st.Manifests = n
	return st
}

// Usage reports the device occupancy the watermark scheduler acts on:
// resident bytes, the device capacity (0 = unbounded), and their ratio
// (0 when the device is unbounded or cannot report residency).
func (s *Store) Usage() (used, capacity int64, frac float64) {
	capacity = s.dev.Params().Capacity
	used = storage.ResidentBytes(s.dev)
	if used < 0 {
		// The device cannot report residency; approximate with the
		// allocation high-water mark minus resident free blocks.
		s.mu.Lock()
		used = s.nextOff - int64(len(s.freeList)-s.trimmedFree)*BlockSize
		s.mu.Unlock()
	}
	if capacity > 0 {
		frac = float64(used) / float64(capacity)
	}
	return used, capacity, frac
}

// ReleaseSpace TRIMs every freed-but-resident block off the device and
// returns the number of bytes released. The offsets stay on the free
// list — reuse simply re-materializes them. No-op on devices without
// TRIM support.
func (s *Store) ReleaseSpace() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.freeList) - s.trimmedFree
	if n <= 0 {
		return 0
	}
	for _, off := range s.freeList[s.trimmedFree:] {
		storage.DiscardRange(s.dev, off, BlockSize)
	}
	s.trimmedFree = len(s.freeList)
	return int64(n) * BlockSize
}

// controlReserveLocked is the device tail held back from data-path
// allocation so Sync can always publish: room for one more index
// snapshot (sized from the last generation published, doubled for
// growth) plus slack for the superblock slots. A full device must
// degrade the data plane — checkpoint writes fail typed and get
// retried after reclamation — never the control plane, or a fence or
// generation write could be starved by checkpoint history at exactly
// the moment a failover depends on it.
func (s *Store) controlReserveLocked() int64 {
	reserve := int64(4 * BlockSize)
	if n := len(s.idxHist); n > 0 {
		sz := int64((s.idxHist[n-1].n + BlockSize - 1) &^ (BlockSize - 1))
		reserve += 2 * sz
	}
	return reserve
}

// ControlOverhead reports the control-plane bytes the store holds back
// from data-path allocations: superblock slots plus room to publish two
// index generations at their current size. Device-sizing code must add
// this on top of data-footprint estimates — it never amortizes into
// per-epoch growth, which matters once sub-block metadata packing makes
// that growth small.
func (s *Store) ControlOverhead() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.controlReserveLocked()
}

// dataGrowthLocked reports whether the next single-block allocation
// would grow device residency (bump allocation or re-materializing a
// trimmed block) instead of reusing a resident free block.
func (s *Store) dataGrowthLocked() bool {
	return len(s.freeList) == s.trimmedFree
}

// dataRoomLocked refuses a data-path allocation of need bytes once a
// bounded device's remaining space is down to the control-plane
// reserve. The error wraps ErrStoreFull, so callers reclaim and retry
// exactly as for a physically full device.
func (s *Store) dataRoomLocked(need int64) error {
	capacity := s.dev.Params().Capacity
	if capacity == 0 {
		return nil
	}
	used := storage.ResidentBytes(s.dev)
	if used < 0 {
		return nil
	}
	if used+need > capacity-s.controlReserveLocked() {
		return fmt.Errorf("%w: %d bytes held back as control-plane reserve: %w",
			ErrStoreFull, s.controlReserveLocked(), storage.ErrOutOfSpace)
	}
	return nil
}

// allocBlock returns a device offset for one block, reusing freed
// space in place when available. Resident free blocks (the list's
// tail) are preferred so reuse never has to re-grow the device.
func (s *Store) allocBlock() int64 {
	if n := len(s.freeList); n > 0 {
		off := s.freeList[n-1]
		s.freeList = s.freeList[:n-1]
		if s.trimmedFree > n-1 {
			s.trimmedFree = n - 1
		}
		return off
	}
	off := s.nextOff
	s.nextOff += BlockSize
	return off
}

// allocExtent reserves a variable-sized metadata extent. Single-block
// extents (almost every record's metadata) reuse the free list; larger
// extents need contiguity and bump-allocate.
func (s *Store) allocExtent(n int) int64 {
	need := int64((n + BlockSize - 1) &^ (BlockSize - 1))
	if need == BlockSize && len(s.freeList) > 0 {
		return s.allocBlock()
	}
	off := s.nextOff
	s.nextOff += need
	return off
}

// packAllocLocked places a small metadata extent inside a shared pack
// block, opening a new one when the current block is full (or none is
// open). The caller guarantees 0 < n < BlockSize. Packing is what
// makes cross-group dedup pay off at fleet scale: a thousand clones of
// one image dedup their data blocks to a single copy, and their
// per-record metadata — ~tens of bytes each — shares blocks instead of
// burning a full block per clone per object.
func (s *Store) packAllocLocked(n int) (int64, error) {
	if s.packOff == 0 || s.packUsed+n > BlockSize {
		if s.dataGrowthLocked() {
			if err := s.dataRoomLocked(BlockSize); err != nil {
				return 0, err
			}
		}
		if old := s.packOff; old != 0 && s.packLive[old] == 0 {
			// Everything packed into the retiring block already died.
			delete(s.packLive, old)
			s.freeList = append(s.freeList, old)
		}
		s.packOff = s.allocBlock()
		s.packUsed = 0
		s.packLive[s.packOff] = 0
	}
	off := s.packOff + int64(s.packUsed)
	s.packUsed += n
	s.packLive[s.packOff]++
	return off, nil
}

// freeExtentLocked returns an extent's blocks to the free list, where
// data-block and metadata allocations both draw from. Without this,
// record metadata and index generations leak device space forever —
// fatal on a bounded device. Packed extents (recognized by their block
// base holding a pack refcount — index extents and large metadata are
// never packed) only release their block once every co-packed extent
// has died.
func (s *Store) freeExtentLocked(off int64, n int) {
	if off < dataStart || n <= 0 {
		return
	}
	if n < BlockSize {
		base := off &^ (BlockSize - 1)
		if live, ok := s.packLive[base]; ok {
			live--
			switch {
			case live <= 0 && base == s.packOff:
				// The open pack block emptied out: rewind the bump
				// allocator and keep filling it. No extent can be in
				// flight here — unregistered extents hold a live count.
				s.packLive[base] = 0
				s.packUsed = 0
			case live <= 0:
				delete(s.packLive, base)
				s.freeList = append(s.freeList, base)
			default:
				s.packLive[base] = live
			}
			return
		}
	}
	end := off + int64((n+BlockSize-1)&^(BlockSize-1))
	for o := off; o < end; o += BlockSize {
		s.freeList = append(s.freeList, o)
	}
}

// CompactPacks rewrites the surviving small-metadata extents out of
// sparse pack blocks so they can be freed. Packing shares one block
// between many records' metadata; epoch reclamation then frees those
// extents in whatever order history dies, and a block stays pinned as
// long as one co-packed extent lives. On a long-running bounded device
// that fragmentation accumulates — the reclaimer can drop every epoch
// retention allows and still find the space locked inside half-dead
// pack blocks. Compaction moves each victim block's live extents into
// the open pack block and returns the emptied victims to the free
// list. It reports the number of pack blocks freed.
//
// Only blocks whose live-extent count is fully accounted for by
// registered records are touched: an in-flight PutRecord holds a pack
// extent before the record is registered, and such a block is skipped
// rather than compacted underneath the writer. The open pack block is
// never a victim. Metadata is rewritten from the in-memory copy; the
// published index carries the bytes too, so a crash between the move
// and the next index sync recovers from the superblock as usual.
func (s *Store) CompactPacks() int64 {
	type move struct {
		key  RecordKey
		base int64
	}
	s.mu.Lock()
	byBase := make(map[int64][]*Record)
	for _, rec := range s.records {
		if rec.metaLen+1 >= BlockSize || rec.metaOff < dataStart {
			continue
		}
		base := rec.metaOff &^ (BlockSize - 1)
		if _, ok := s.packLive[base]; ok {
			byBase[base] = append(byBase[base], rec)
		}
	}
	var moves []move
	victims := make(map[int64]bool)
	for base, recs := range byBase {
		if base == s.packOff || len(recs) != s.packLive[base] {
			continue
		}
		live := 0
		for _, rec := range recs {
			live += rec.metaLen + 1
		}
		if live*2 >= BlockSize {
			continue
		}
		victims[base] = true
		for _, rec := range recs {
			moves = append(moves, move{RecordKey{rec.Group, rec.OID, rec.Epoch}, base})
		}
	}
	s.mu.Unlock()
	sort.Slice(moves, func(i, j int) bool {
		a, b := moves[i], moves[j]
		if a.base != b.base {
			return a.base < b.base
		}
		if a.key.Group != b.key.Group {
			return a.key.Group < b.key.Group
		}
		if a.key.OID != b.key.OID {
			return a.key.OID < b.key.OID
		}
		return a.key.Epoch < b.key.Epoch
	})

	freed := int64(0)
	for _, mv := range moves {
		s.mu.Lock()
		rec, ok := s.records[mv.key]
		if !ok || rec.metaOff&^(BlockSize-1) != mv.base {
			// Dropped or already moved since the plan was taken.
			s.mu.Unlock()
			continue
		}
		off, err := s.packAllocLocked(rec.metaLen + 1)
		if err != nil {
			// No room to open a fresh pack block: compaction needs one
			// block of headroom, which an emergency drop pass normally
			// provides. Abort; the old extents stay valid.
			s.mu.Unlock()
			return freed
		}
		meta := rec.Meta
		s.mu.Unlock()
		if len(meta) > 0 {
			if _, err := s.dev.WriteAt(meta, off); err != nil {
				s.mu.Lock()
				s.freeExtentLocked(off, rec.metaLen+1)
				s.mu.Unlock()
				continue
			}
		}
		s.mu.Lock()
		s.freeExtentLocked(rec.metaOff, rec.metaLen+1)
		rec.metaOff = off
		if victims[mv.base] {
			if _, alive := s.packLive[mv.base]; !alive {
				// That free emptied the victim block.
				delete(victims, mv.base)
				s.stats.PacksCompacted++
				freed++
			}
		}
		s.mu.Unlock()
	}
	return freed
}

// HashPage computes the dedup hash of a page, charging the hash cost.
func (s *Store) HashPage(p []byte) Hash {
	if s.clock != nil {
		s.clock.Advance(s.costs.HashPage)
	}
	return sha256.Sum256(p)
}

// putBlock stores one page of data, deduplicating by content.
func (s *Store) putBlock(data []byte) (BlockRef, error) {
	h := s.HashPage(data)
	s.mu.Lock()
	if be, ok := s.blocks[h]; ok {
		be.refs++
		s.stats.DedupHits++
		ref := be.ref
		s.mu.Unlock()
		return ref, nil
	}
	if s.dataGrowthLocked() {
		if err := s.dataRoomLocked(BlockSize); err != nil {
			s.mu.Unlock()
			return BlockRef{}, err
		}
	}
	off := s.allocBlock()
	s.mu.Unlock()

	// Publish the dedup entry only after the bytes are on media: a
	// failed write must not leave the index pointing at a block that
	// never landed, or every later put of the same content dedups
	// against garbage and poisons each epoch referencing the page.
	if _, err := s.dev.WriteAt(data, off); err != nil {
		s.mu.Lock()
		s.freeList = append(s.freeList, off)
		s.mu.Unlock()
		return BlockRef{}, wrapSpace(err)
	}
	s.mu.Lock()
	if be, ok := s.blocks[h]; ok {
		// A concurrent put landed the same content first: reference
		// its block and recycle the one written here.
		be.refs++
		s.stats.DedupHits++
		ref := be.ref
		s.freeList = append(s.freeList, off)
		s.mu.Unlock()
		return ref, nil
	}
	be := &blockEntry{ref: BlockRef{Off: off, Hash: h}, refs: 1}
	s.blocks[h] = be
	s.mu.Unlock()
	return be.ref, nil
}

// releaseBlock drops one reference, freeing the space in place.
func (s *Store) releaseBlock(ref BlockRef) {
	s.mu.Lock()
	defer s.mu.Unlock()
	be, ok := s.blocks[ref.Hash]
	if !ok {
		return
	}
	be.refs--
	if be.refs <= 0 {
		delete(s.blocks, ref.Hash)
		s.freeList = append(s.freeList, be.ref.Off)
		s.stats.BlocksFreed++
	}
}

// verifyBlock checks a block's contents against its content hash. The
// hash doubles as an end-to-end integrity check: dedup already paid
// for it at write time, verifying at read time catches silent rot.
func (s *Store) verifyBlock(ref BlockRef, data []byte) error {
	if s.HashPage(data) != ref.Hash {
		return fmt.Errorf("%w: block at offset %d", ErrCorruptBlock, ref.Off)
	}
	return nil
}

// ReadBlock fetches a data block's contents, verifying its hash.
func (s *Store) ReadBlock(ref BlockRef) ([]byte, error) {
	buf := make([]byte, BlockSize)
	if _, err := s.dev.ReadAt(buf, ref.Off); err != nil {
		return nil, err
	}
	if err := s.verifyBlock(ref, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// ChargeIndexRead models re-reading n bytes of persisted index
// metadata (manifest, record, and block-reference entries) from the
// device. The in-memory index serves the contents — it is the page
// cache — but a restore's cost model still bills the device read a
// cold lazy restore performs to learn where its pages live. The read
// targets the superblock region; the bytes are discarded.
func (s *Store) ChargeIndexRead(n int) time.Duration {
	if n <= 0 {
		return 0
	}
	buf := make([]byte, n)
	d, err := s.dev.ReadAt(buf, 0)
	if err != nil {
		return 0
	}
	return d
}

// ReadBlocks fetches many blocks in one batched device operation,
// overlapping the reads at the device queue depth (the restore path's
// bulk image read). Every block is verified against its hash.
func (s *Store) ReadBlocks(refs []BlockRef) ([][]byte, error) {
	bufs := make([][]byte, len(refs))
	offs := make([]int64, len(refs))
	for i, ref := range refs {
		bufs[i] = make([]byte, BlockSize)
		offs[i] = ref.Off
	}
	if _, err := s.dev.ReadBatch(bufs, offs); err != nil {
		return nil, err
	}
	for i, ref := range refs {
		if err := s.verifyBlock(ref, bufs[i]); err != nil {
			return nil, err
		}
	}
	return bufs, nil
}

// PutRecord writes one object's record for an epoch: metadata plus the
// given pages (complete set when full, dirty set otherwise). Page data
// is deduplicated block by block.
func (s *Store) PutRecord(group, oid, epoch uint64, kind uint16, full bool, meta []byte, pages map[int64][]byte, heat map[int64]uint32) (*Record, error) {
	return s.putRecord(group, oid, epoch, kind, full, meta, pages, nil, heat)
}

// PutRecordRefs writes a record whose pages are existing blocks,
// bumping their reference counts instead of rewriting data. This is
// what makes snapshots and clones zero-copy: a clone's first full
// record in a new group references every block of the source image
// without moving a byte.
func (s *Store) PutRecordRefs(group, oid, epoch uint64, kind uint16, full bool, meta []byte, refs map[int64]BlockRef, heat map[int64]uint32) (*Record, error) {
	return s.putRecord(group, oid, epoch, kind, full, meta, nil, refs, heat)
}

// PutRecordMixed writes a record combining freshly written pages with
// zero-copy references to existing blocks (the snapshot fast path:
// dirty pages written, clean pages re-referenced).
func (s *Store) PutRecordMixed(group, oid, epoch uint64, kind uint16, full bool, meta []byte, pages map[int64][]byte, refs map[int64]BlockRef, heat map[int64]uint32) (*Record, error) {
	return s.putRecord(group, oid, epoch, kind, full, meta, pages, refs, heat)
}

func (s *Store) putRecord(group, oid, epoch uint64, kind uint16, full bool, meta []byte, pages map[int64][]byte, refs map[int64]BlockRef, heat map[int64]uint32) (*Record, error) {
	rec := &Record{
		Group: group,
		OID:   oid,
		Epoch: epoch,
		Kind:  kind,
		Full:  full,
		Meta:  append([]byte(nil), meta...),
		Pages: make(map[int64]BlockRef, len(pages)+len(refs)),
		Heat:  heat,
	}
	var logical int64
	// unwind releases every reference the attempt took so far. A failed
	// put — most importantly an out-of-space one — must leave the index
	// exactly as it found it: no registered record, no leaked refcounts,
	// no orphaned metadata extent.
	unwind := func() {
		s.mu.Lock()
		for _, ref := range rec.Pages {
			s.releaseBlockLocked(ref)
		}
		s.stats.LogicalBytes -= logical
		s.mu.Unlock()
	}
	s.mu.Lock()
	for idx, ref := range refs {
		be, ok := s.blocks[ref.Hash]
		if !ok {
			// Drop the refs taken on earlier loop iterations.
			for pi, pr := range rec.Pages {
				if pi != idx {
					s.releaseBlockLocked(pr)
				}
			}
			s.stats.LogicalBytes -= logical
			s.mu.Unlock()
			return nil, fmt.Errorf("objstore: dangling block reference at page %d", idx)
		}
		be.refs++
		rec.Pages[idx] = be.ref
		s.stats.LogicalBytes += BlockSize
		logical += BlockSize
	}
	s.mu.Unlock()
	for idx, data := range pages {
		if len(data) != BlockSize {
			padded := make([]byte, BlockSize)
			copy(padded, data)
			data = padded
		}
		ref, err := s.putBlock(data)
		if err != nil {
			unwind()
			return nil, err
		}
		if old, dup := rec.Pages[idx]; dup {
			// Fresh data wins over a stale ref from the refs map; drop
			// the reference the refs loop already took for this page.
			s.releaseBlock(old)
			rec.Pages[idx] = ref
		} else {
			rec.Pages[idx] = ref
			s.mu.Lock()
			s.stats.LogicalBytes += BlockSize
			logical += BlockSize
			s.mu.Unlock()
		}
	}
	// Write the metadata extent, then register the record. Registration
	// must come last: a record visible in the index before its metadata
	// landed would be poisoned by a failed write.
	rec.metaLen = len(meta)
	need := len(meta) + 1
	s.mu.Lock()
	if need < BlockSize {
		off, err := s.packAllocLocked(need)
		if err != nil {
			s.mu.Unlock()
			unwind()
			return nil, err
		}
		rec.metaOff = off
	} else {
		metaNeed := int64((need + BlockSize - 1) &^ (BlockSize - 1))
		if err := s.dataRoomLocked(metaNeed); err != nil {
			s.mu.Unlock()
			unwind()
			return nil, err
		}
		rec.metaOff = s.allocExtent(need)
	}
	s.mu.Unlock()
	if len(meta) > 0 {
		if _, err := s.dev.WriteAt(meta, rec.metaOff); err != nil {
			s.mu.Lock()
			s.freeExtentLocked(rec.metaOff, len(meta)+1)
			s.mu.Unlock()
			unwind()
			return nil, wrapSpace(err)
		}
	}
	key := RecordKey{group, oid, epoch}
	s.mu.Lock()
	if old, ok := s.records[key]; ok && old != rec {
		// Re-delivery (a flush retried after a partial failure):
		// replace the previous attempt's record, releasing everything
		// it pinned so refcounts stay exact.
		for _, ref := range old.Pages {
			s.releaseBlockLocked(ref)
		}
		s.stats.LogicalBytes -= int64(len(old.Pages)) * BlockSize
		s.stats.MetaBytes -= int64(old.metaLen)
		s.freeExtentLocked(old.metaOff, old.metaLen+1)
	}
	s.records[key] = rec
	s.stats.MetaBytes += int64(len(meta))
	s.mu.Unlock()
	return rec, nil
}

// GetRecord returns the record of a group's object at an exact epoch.
func (s *Store) GetRecord(group, oid, epoch uint64) (*Record, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.records[RecordKey{group, oid, epoch}]
	if !ok {
		return nil, ErrNoRecord
	}
	return rec, nil
}

// PutManifest records a checkpoint: the set of records belonging to
// (group, epoch), the root process OIDs, and an optional name.
func (s *Store) PutManifest(m *Manifest) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ms := s.manifests[m.Group]
	ms = append(ms, m)
	sort.Slice(ms, func(i, j int) bool { return ms[i].Epoch < ms[j].Epoch })
	s.manifests[m.Group] = ms
	if m.Name != "" {
		s.named[m.Name] = manifestID{m.Group, m.Epoch}
	}
}

// Manifest returns the checkpoint manifest of (group, epoch).
func (s *Store) Manifest(group, epoch uint64) (*Manifest, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, m := range s.manifests[group] {
		if m.Epoch == epoch {
			return m, nil
		}
	}
	return nil, ErrNoManifest
}

// NamedManifest resolves a user-visible checkpoint name.
func (s *Store) NamedManifest(name string) (*Manifest, error) {
	s.mu.Lock()
	id, ok := s.named[name]
	s.mu.Unlock()
	if !ok {
		return nil, ErrNoManifest
	}
	return s.Manifest(id.Group, id.Epoch)
}

// LatestManifest returns the most recent checkpoint of a group.
func (s *Store) LatestManifest(group uint64) (*Manifest, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ms := s.manifests[group]
	if len(ms) == 0 {
		return nil, ErrNoManifest
	}
	return ms[len(ms)-1], nil
}

// Manifests lists a group's checkpoint history, oldest first.
func (s *Store) Manifests(group uint64) []*Manifest {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Manifest, len(s.manifests[group]))
	copy(out, s.manifests[group])
	return out
}

// Groups lists the group IDs with at least one checkpoint.
func (s *Store) Groups() []uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]uint64, 0, len(s.manifests))
	for g := range s.manifests {
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ResolvePages materializes the complete page map of an object at an
// epoch by walking the record chain backwards until a full record:
// later (dirty) pages shadow earlier ones. It also returns the most
// recent heat snapshot.
func (s *Store) ResolvePages(group, oid, epoch uint64) (map[int64]BlockRef, map[int64]uint32, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.resolvePagesLocked(group, oid, epoch)
}

func (s *Store) resolvePagesLocked(group, oid, epoch uint64) (map[int64]BlockRef, map[int64]uint32, error) {
	pages := make(map[int64]BlockRef)
	var heat map[int64]uint32
	// Collect the group's epochs <= target, newest first.
	var chain []*Record
	cur := epoch
	for cur != 0 {
		m := s.findManifestLocked(group, cur)
		if m == nil {
			return nil, nil, fmt.Errorf("%w: group %d epoch %d", ErrNoManifest, group, cur)
		}
		if rec, ok := s.records[RecordKey{group, oid, cur}]; ok {
			chain = append(chain, rec)
			if rec.Full {
				break
			}
		}
		cur = m.Prev
	}
	if len(chain) == 0 {
		return nil, nil, fmt.Errorf("%w: object %d at epoch %d", ErrNoRecord, oid, epoch)
	}
	// Apply oldest-to-newest so newer pages win.
	for i := len(chain) - 1; i >= 0; i-- {
		for idx, ref := range chain[i].Pages {
			pages[idx] = ref
		}
		if chain[i].Heat != nil {
			heat = chain[i].Heat
		}
	}
	return pages, heat, nil
}

// ResolveMeta returns the newest metadata of an object at or before an
// epoch within the group's history.
func (s *Store) ResolveMeta(group, oid, epoch uint64) ([]byte, uint16, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := epoch
	for cur != 0 {
		if rec, ok := s.records[RecordKey{group, oid, cur}]; ok {
			return rec.Meta, rec.Kind, nil
		}
		m := s.findManifestLocked(group, cur)
		if m == nil {
			break
		}
		cur = m.Prev
	}
	return nil, 0, fmt.Errorf("%w: metadata of object %d", ErrNoRecord, oid)
}

func (s *Store) findManifestLocked(group, epoch uint64) *Manifest {
	for _, m := range s.manifests[group] {
		if m.Epoch == epoch {
			return m
		}
	}
	return nil
}

// RecordsOf lists every epoch's record for one group's OID, oldest
// first. The NT-log uses this to replay its append-only entries at
// recovery.
func (s *Store) RecordsOf(group, oid uint64) []*Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []*Record
	for key, rec := range s.records {
		if key.Group == group && key.OID == oid {
			out = append(out, rec)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Epoch < out[j].Epoch })
	return out
}

// DeleteRecord removes one record outside the manifest-driven GC path
// (used by the NT log, whose records do not belong to any manifest).
// Its blocks are released in place.
func (s *Store) DeleteRecord(group, oid, epoch uint64) {
	s.mu.Lock()
	rec, ok := s.records[RecordKey{group, oid, epoch}]
	if !ok {
		s.mu.Unlock()
		return
	}
	delete(s.records, RecordKey{group, oid, epoch})
	s.stats.MetaBytes -= int64(rec.metaLen)
	s.freeExtentLocked(rec.metaOff, rec.metaLen+1)
	for _, ref := range rec.Pages {
		s.releaseBlockLocked(ref)
	}
	s.mu.Unlock()
}
