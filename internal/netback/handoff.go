package netback

import (
	"encoding/binary"
	"fmt"
	"time"

	"aurora/internal/core"
)

// This file implements the in-band migration handover: the frame pair
// a live migration uses to push the new generation's fence to the
// target over the replication link itself, so the announcement rides
// the same faulty wire as the data stream (and is dropped, duplicated,
// reordered, and partitioned by the same injectors). The core.Migrator
// discovers the capability through core.HandoffAnnouncer.

var _ core.HandoffAnnouncer = (*ReplicaBackend)(nil)

// Handoff announces a migration handover for group at gen (contiguous
// floor floor) and waits for the receiver's acknowledgment that the
// fence is adopted. Stray acks, fenced replies, hello acks, and need
// frames left in flight by a faulty link are skipped while waiting —
// only a handoff ack for this (group, gen) completes the announcement.
// Any transport failure drops the connection and returns an error
// wrapping ErrDisconnected; the caller heals the link and retries
// (AdoptFence on the receiver is raise-only, so a duplicated handoff
// is idempotent).
func (rb *ReplicaBackend) Handoff(group, gen, floor uint64) error {
	rc := rb.core
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.conn == nil {
		return fmt.Errorf("%w: handoff of group %d not sent", ErrDisconnected, group)
	}
	var p [24]byte
	binary.LittleEndian.PutUint64(p[:8], group)
	binary.LittleEndian.PutUint64(p[8:16], gen)
	binary.LittleEndian.PutUint64(p[16:], floor)
	if err := writeFrame(rc.conn, frameHandoff, p[:]); err != nil {
		rc.lost()
		return fmt.Errorf("%w: sending handoff for group %d: %w", ErrDisconnected, group, err)
	}
	for {
		typ, ack, err := readFrame(rc.conn)
		if err != nil {
			rc.lost()
			return fmt.Errorf("%w: awaiting handoff ack for group %d: %w", ErrDisconnected, group, err)
		}
		switch {
		case typ == frameAck && len(ack) == 16:
			continue // a stale delta ack from before the handover
		case typ == frameHelloAck && len(ack) == 16:
			continue // a duplicated handshake reply
		case typ == frameFenced && len(ack) == 24:
			continue // a stale fenced reply; the handoff fence supersedes it
		case typ == frameNeed && len(ack) == 16:
			continue // a stale need for an epoch already resolved
		}
		if typ != frameHandoffAck || len(ack) != 16 {
			rc.lost()
			return fmt.Errorf("%w: expected handoff ack, got type %d", ErrBadFrame, typ)
		}
		if g := binary.LittleEndian.Uint64(ack[:8]); g != group {
			continue // another group's handover on a shared link
		}
		if g := binary.LittleEndian.Uint64(ack[8:]); g < gen {
			continue // a duplicated ack for an older handover
		}
		break
	}
	rc.sent += int64(len(p)) + frameHdrSize
	cost := rc.nic.Latency + rc.extraLat +
		time.Duration((int64(len(p))+frameHdrSize)*int64(time.Second)/rc.nic.WriteBW)
	if rb.clock != nil {
		rb.clock.Advance(cost)
	}
	return nil
}
