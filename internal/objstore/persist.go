package objstore

import (
	"encoding/binary"

	"aurora/internal/codec"
	"aurora/internal/storage"
)

// This file persists the store's index so a store survives restart:
// Sync serializes every map to a fresh extent and points the
// superblock at it; Open replays that extent. Data blocks themselves
// are already on the device — the index is the only volatile state.

// Sync writes the index to the device and updates the superblock.
func (s *Store) Sync() error {
	s.mu.Lock()
	e := codec.NewEncoder()
	// Allocation state.
	e.I64(s.nextOff)
	e.U64(uint64(len(s.freeList)))
	for _, off := range s.freeList {
		e.I64(off)
	}
	// Block index.
	e.U64(uint64(len(s.blocks)))
	for h, be := range s.blocks {
		e.Bytes2(h[:])
		e.I64(be.ref.Off)
		e.I64(int64(be.refs))
	}
	// Records.
	e.U64(uint64(len(s.records)))
	for key, rec := range s.records {
		e.U64(key.OID)
		e.U64(key.Epoch)
		e.U64(uint64(rec.Kind))
		e.Bool(rec.Full)
		e.Bytes2(rec.Meta)
		e.I64(rec.metaOff)
		e.I64(int64(rec.metaLen))
		e.U64(uint64(len(rec.Pages)))
		for idx, ref := range rec.Pages {
			e.I64(idx)
			e.I64(ref.Off)
			e.Bytes2(ref.Hash[:])
		}
		e.U64(uint64(len(rec.Heat)))
		for idx, h := range rec.Heat {
			e.I64(idx)
			e.U32(h)
		}
	}
	// Manifests.
	groups := make([]uint64, 0, len(s.manifests))
	for g := range s.manifests {
		groups = append(groups, g)
	}
	e.U64(uint64(len(groups)))
	for _, g := range groups {
		e.U64(g)
		ms := s.manifests[g]
		e.U64(uint64(len(ms)))
		for _, m := range ms {
			e.U64(m.Epoch)
			e.Str(m.Name)
			e.U64(m.Prev)
			e.U64(uint64(len(m.Records)))
			for _, rk := range m.Records {
				e.U64(rk.OID)
				e.U64(rk.Epoch)
			}
			e.U64Slice(m.Roots)
		}
	}
	// Stats that must survive restart.
	e.I64(s.stats.LogicalBytes)
	e.I64(s.stats.MetaBytes)
	e.I64(s.stats.DedupHits)

	idx := e.Bytes()
	idxOff := s.allocExtent(len(idx))
	s.mu.Unlock()

	if _, err := s.dev.WriteAt(idx, idxOff); err != nil {
		return err
	}
	var sb [sbSize]byte
	binary.LittleEndian.PutUint32(sb[0:], magic)
	binary.LittleEndian.PutUint64(sb[8:], uint64(idxOff))
	binary.LittleEndian.PutUint64(sb[16:], uint64(len(idx)))
	if _, err := s.dev.WriteAt(sb[:], 0); err != nil {
		return err
	}
	_, err := s.dev.Sync()
	return err
}

// Open mounts an existing store from its superblock, replaying the
// index written by the last Sync.
func Open(dev storage.Device, clock *storage.Clock) (*Store, error) {
	var sb [sbSize]byte
	if _, err := dev.ReadAt(sb[:], 0); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint32(sb[0:]) != magic {
		return nil, ErrBadMagic
	}
	idxOff := int64(binary.LittleEndian.Uint64(sb[8:]))
	idxLen := int64(binary.LittleEndian.Uint64(sb[16:]))
	idx := make([]byte, idxLen)
	if _, err := dev.ReadAt(idx, idxOff); err != nil {
		return nil, err
	}

	s := Create(dev, clock)
	d := codec.NewDecoder(idx)
	s.nextOff = d.I64()
	nFree := d.U64()
	for i := uint64(0); i < nFree && d.Err() == nil; i++ {
		s.freeList = append(s.freeList, d.I64())
	}
	nBlocks := d.U64()
	for i := uint64(0); i < nBlocks && d.Err() == nil; i++ {
		var h Hash
		copy(h[:], d.Bytes2())
		be := &blockEntry{ref: BlockRef{Off: d.I64(), Hash: h}, refs: int32(d.I64())}
		s.blocks[h] = be
	}
	nRecs := d.U64()
	for i := uint64(0); i < nRecs && d.Err() == nil; i++ {
		key := RecordKey{OID: d.U64(), Epoch: d.U64()}
		rec := &Record{
			OID:   key.OID,
			Epoch: key.Epoch,
			Kind:  uint16(d.U64()),
			Full:  d.Bool(),
			Meta:  d.Bytes2(),
			Pages: make(map[int64]BlockRef),
		}
		rec.metaOff = d.I64()
		rec.metaLen = int(d.I64())
		nPages := d.U64()
		for j := uint64(0); j < nPages && d.Err() == nil; j++ {
			idxN := d.I64()
			ref := BlockRef{Off: d.I64()}
			copy(ref.Hash[:], d.Bytes2())
			rec.Pages[idxN] = ref
		}
		nHeat := d.U64()
		if nHeat > 0 {
			rec.Heat = make(map[int64]uint32, nHeat)
		}
		for j := uint64(0); j < nHeat && d.Err() == nil; j++ {
			hidx := d.I64()
			rec.Heat[hidx] = d.U32()
		}
		s.records[key] = rec
	}
	nGroups := d.U64()
	for i := uint64(0); i < nGroups && d.Err() == nil; i++ {
		g := d.U64()
		nMs := d.U64()
		for j := uint64(0); j < nMs && d.Err() == nil; j++ {
			m := &Manifest{Group: g, Epoch: d.U64(), Name: d.Str(), Prev: d.U64()}
			nRks := d.U64()
			for r := uint64(0); r < nRks && d.Err() == nil; r++ {
				m.Records = append(m.Records, RecordKey{OID: d.U64(), Epoch: d.U64()})
			}
			m.Roots = d.U64Slice()
			s.manifests[g] = append(s.manifests[g], m)
			if m.Name != "" {
				s.named[m.Name] = manifestID{g, m.Epoch}
			}
		}
	}
	s.stats.LogicalBytes = d.I64()
	s.stats.MetaBytes = d.I64()
	s.stats.DedupHits = d.I64()
	if err := d.Finish("objstore index"); err != nil {
		return nil, err
	}
	return s, nil
}
