// Package codec implements the compact binary encoding shared by
// checkpoint metadata, the object store index, and the Aurora file
// system: varints and length-prefixed byte strings, nothing
// reflective, so the on-disk format stays stable and deterministic.
package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrCorrupt is returned when a decoder runs off the end of its buffer
// or encounters an impossible value.
var ErrCorrupt = errors.New("codec: corrupt serialized object")

// Encoder serializes kernel objects into a compact binary form. Every
// POSIX object in Aurora carries code to serialize itself (the paper's
// "first class objects"); they all funnel through this encoder so the
// on-disk format is uniform and deterministic.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an empty encoder.
func NewEncoder() *Encoder { return &Encoder{} }

// Bytes returns the accumulated encoding.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the current encoding size.
func (e *Encoder) Len() int { return len(e.buf) }

// U64 appends a varint-encoded unsigned integer.
func (e *Encoder) U64(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }

// I64 appends a varint-encoded signed integer.
func (e *Encoder) I64(v int64) { e.buf = binary.AppendVarint(e.buf, v) }

// U32 appends a 32-bit value.
func (e *Encoder) U32(v uint32) { e.U64(uint64(v)) }

// U16 appends a 16-bit value.
func (e *Encoder) U16(v uint16) { e.U64(uint64(v)) }

// U8 appends a byte.
func (e *Encoder) U8(v uint8) { e.buf = append(e.buf, v) }

// Bool appends a boolean.
func (e *Encoder) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// Bytes2 appends a length-prefixed byte slice.
func (e *Encoder) Bytes2(p []byte) {
	e.U64(uint64(len(p)))
	e.buf = append(e.buf, p...)
}

// Str appends a length-prefixed string.
func (e *Encoder) Str(s string) { e.Bytes2([]byte(s)) }

// StrSlice appends a slice of strings.
func (e *Encoder) StrSlice(ss []string) {
	e.U64(uint64(len(ss)))
	for _, s := range ss {
		e.Str(s)
	}
}

// U64Slice appends a slice of unsigned integers.
func (e *Encoder) U64Slice(vs []uint64) {
	e.U64(uint64(len(vs)))
	for _, v := range vs {
		e.U64(v)
	}
}

// Decoder reads back what an Encoder produced.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder wraps a buffer.
func NewDecoder(p []byte) *Decoder { return &Decoder{buf: p} }

// Err returns the first decoding error encountered.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

func (d *Decoder) fail() {
	if d.err == nil {
		d.err = ErrCorrupt
	}
}

// U64 reads a varint-encoded unsigned integer.
func (d *Decoder) U64() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail()
		return 0
	}
	d.off += n
	return v
}

// I64 reads a varint-encoded signed integer.
func (d *Decoder) I64() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.fail()
		return 0
	}
	d.off += n
	return v
}

// U32 reads a 32-bit value.
func (d *Decoder) U32() uint32 { return uint32(d.U64()) }

// U16 reads a 16-bit value.
func (d *Decoder) U16() uint16 { return uint16(d.U64()) }

// U8 reads a byte.
func (d *Decoder) U8() uint8 {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.buf) {
		d.fail()
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

// Bool reads a boolean.
func (d *Decoder) Bool() bool { return d.U8() != 0 }

// Bytes2 reads a length-prefixed byte slice.
func (d *Decoder) Bytes2() []byte {
	n := d.U64()
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.buf)-d.off) {
		d.fail()
		return nil
	}
	out := make([]byte, n)
	copy(out, d.buf[d.off:d.off+int(n)])
	d.off += int(n)
	return out
}

// Str reads a length-prefixed string.
func (d *Decoder) Str() string { return string(d.Bytes2()) }

// StrSlice reads a slice of strings.
func (d *Decoder) StrSlice() []string {
	n := d.U64()
	if d.err != nil || n > uint64(d.Remaining()) {
		d.fail()
		return nil
	}
	out := make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		out = append(out, d.Str())
	}
	return out
}

// U64Slice reads a slice of unsigned integers.
func (d *Decoder) U64Slice() []uint64 {
	n := d.U64()
	if d.err != nil || n > uint64(d.Remaining())+1 {
		d.fail()
		return nil
	}
	out := make([]uint64, 0, n)
	for i := uint64(0); i < n; i++ {
		out = append(out, d.U64())
	}
	return out
}

// Finish returns ErrCorrupt-wrapped context if any read failed.
func (d *Decoder) Finish(what string) error {
	if d.err != nil {
		return fmt.Errorf("decoding %s: %w", what, d.err)
	}
	return nil
}
