// Package aurora's root benchmark suite: one testing.B benchmark per
// paper table, figure, and quantitative claim, plus the design
// ablations DESIGN.md calls out.
//
// Each benchmark reports two kinds of numbers: Go's wall-clock ns/op
// (the real cost of running the simulation) and custom metrics in
// virtual microseconds (the cost-model results that correspond to the
// paper's measurements). EXPERIMENTS.md records paper-vs-measured.
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// The paper-scale working set (2 GiB) is exercised by
// cmd/aurora-bench -ws 2147483648; benchmarks default to a scaled
// 64 MiB so the suite stays fast.
package aurora

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"aurora/internal/bench"
	"aurora/internal/core"
	"aurora/internal/vm"
)

const benchWS = 64 << 20 // scaled working set (paper: 2 GiB)

func vus(d int64) float64 { return float64(d) / 1e3 }

// BenchmarkTable3_FullCheckpoint regenerates Table 3's "Full" column.
func BenchmarkTable3_FullCheckpoint(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.Table3(benchWS, 0.125)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(vus(int64(r.Full.MetadataCopy)), "vus-metadata")
		b.ReportMetric(vus(int64(r.Full.LazyDataCopy)), "vus-datacopy")
		b.ReportMetric(vus(int64(r.Full.StopTime)), "vus-stop")
	}
}

// BenchmarkTable3_IncrementalCheckpoint regenerates the "Incremental"
// column: the sub-millisecond stop time.
func BenchmarkTable3_IncrementalCheckpoint(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.Table3(benchWS, 0.125)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(vus(int64(r.Incr.MetadataCopy)), "vus-metadata")
		b.ReportMetric(vus(int64(r.Incr.LazyDataCopy)), "vus-datacopy")
		b.ReportMetric(vus(int64(r.Incr.StopTime)), "vus-stop")
	}
}

// BenchmarkTable4_RedisMemoryRestore regenerates Table 4 column 1.
func BenchmarkTable4_RedisMemoryRestore(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.Table4(benchWS)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(vus(int64(r.RedisMem.MemoryState)), "vus-memory")
		b.ReportMetric(vus(int64(r.RedisMem.MetadataState)), "vus-metadata")
		b.ReportMetric(vus(int64(r.RedisMem.Total)), "vus-total")
	}
}

// BenchmarkTable4_ServerlessRestores regenerates Table 4 columns 2-3.
func BenchmarkTable4_ServerlessRestores(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.Table4(benchWS)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(vus(int64(r.ServerlessMem.Total)), "vus-mem-total")
		b.ReportMetric(vus(int64(r.ServerlessDisk.ObjectStoreRead)), "vus-disk-read")
		b.ReportMetric(vus(int64(r.ServerlessDisk.Total)), "vus-disk-total")
	}
}

// BenchmarkCheckpointFrequency covers the §3 claim: 100 checkpoints
// per second with modest overhead.
func BenchmarkCheckpointFrequency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.Freq(100, 50, benchWS/4)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(vus(int64(r.AvgStop)), "vus-avgstop")
		b.ReportMetric(r.Overhead*100, "overhead-%")
	}
}

// BenchmarkServerlessDensity covers the §4 claim: functions stored as
// small deltas over a shared runtime image.
func BenchmarkServerlessDensity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.Density(8)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.BytesPerFn), "bytes/function")
		b.ReportMetric(float64(r.NaiveBytesPerFn), "naive-bytes/function")
	}
}

// BenchmarkRedisPersistence covers the §4 claim: the Aurora port's
// durability path beats fork+AOF.
func BenchmarkRedisPersistence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.RedisPersistence(200, 8<<20)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(vus(int64(r.AOFPerOp)), "vus-aof/op")
		b.ReportMetric(vus(int64(r.AuroraPerOp)), "vus-aurora/op")
	}
}

// BenchmarkCRIUBaseline covers the §2 claim: syscall-boundary
// checkpointing is prohibitive next to Aurora's in-kernel COW.
func BenchmarkCRIUBaseline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.CRIUCompare(benchWS / 4)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(vus(int64(r.CRIUStop)), "vus-criu-stop")
		b.ReportMetric(vus(int64(r.AuroraStop)), "vus-aurora-stop")
	}
}

// BenchmarkWarmStart covers the §4 claim: restore beats cold boot.
func BenchmarkWarmStart(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.WarmStart()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(vus(int64(r.Cold)), "vus-cold")
		b.ReportMetric(vus(int64(r.WarmMem)), "vus-warm-mem")
		b.ReportMetric(vus(int64(r.WarmDisk)), "vus-warm-disk")
	}
}

// BenchmarkRecordReplay covers the §4 claim: checkpoints bound the
// record log.
func BenchmarkRecordReplay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := bench.NewMachine()
		ri, err := bench.NewRedisInstance(m, 4<<20)
		if err != nil {
			b.Fatal(err)
		}
		m.O.Attach(ri.Group, m.Store)
		// 100 inputs, checkpoint every 25: the log never exceeds 25.
		logHighWater := 0
		events := 0
		for j := 0; j < 100; j++ {
			events++
			if events > logHighWater {
				logHighWater = events
			}
			if j%25 == 24 {
				if _, err := m.O.Checkpoint(ri.Group, core.CheckpointOpts{}); err != nil {
					b.Fatal(err)
				}
				events = 0
			}
		}
		b.ReportMetric(float64(logHighWater), "log-high-water")
	}
}

// --- ablations ---

// BenchmarkAblationSharedCOW: Aurora's shared-page COW preserves
// shared-memory semantics at one fault per first write.
func BenchmarkAblationSharedCOW(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.AblationSharedCOW()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.SharedFaults), "cow-faults")
	}
}

// BenchmarkAblationDedup: content-hash dedup across checkpoints.
func BenchmarkAblationDedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.AblationDedup(5, 16<<20)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.SavedFrac*100, "saved-%")
	}
}

// BenchmarkAblationLazyRestore contrasts eager, lazy, and
// lazy+prefetch restores of the same image.
func BenchmarkAblationLazyRestore(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := bench.NewMachine()
		ri, err := bench.NewRedisInstance(m, 16<<20)
		if err != nil {
			b.Fatal(err)
		}
		m.O.Attach(ri.Group, m.Store)
		if _, err := m.O.Checkpoint(ri.Group, core.CheckpointOpts{}); err != nil {
			b.Fatal(err)
		}
		// Checkpoint returns at resume; the store holds the image only
		// once the background flush lands.
		if err := m.O.Sync(ri.Group); err != nil {
			b.Fatal(err)
		}
		img, rt, err := m.Store.Load(ri.Group.ID, 0)
		if err != nil {
			b.Fatal(err)
		}
		_, eager, err := m.O.RestoreImage(img, rt, core.RestoreOpts{Lazy: false})
		if err != nil {
			b.Fatal(err)
		}
		img2, rt2, _ := m.Store.Load(ri.Group.ID, 0)
		_, lazy, err := m.O.RestoreImage(img2, rt2, core.RestoreOpts{Lazy: true})
		if err != nil {
			b.Fatal(err)
		}
		img3, rt3, _ := m.Store.Load(ri.Group.ID, 0)
		_, pf, err := m.O.RestoreImage(img3, rt3, core.RestoreOpts{Lazy: true, Prefetch: 64})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(vus(int64(eager.Total)), "vus-eager")
		b.ReportMetric(vus(int64(lazy.Total)), "vus-lazy")
		b.ReportMetric(vus(int64(pf.Total)), "vus-lazy-prefetch")
	}
}

// BenchmarkAblationIncrementalInterval sweeps the dirty fraction:
// stop time scales with the dirty set, not the working set.
func BenchmarkAblationIncrementalInterval(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, frac := range []float64{0.01, 0.05, 0.25} {
			r, err := bench.Table3(benchWS/2, frac)
			if err != nil {
				b.Fatal(err)
			}
			switch frac {
			case 0.01:
				b.ReportMetric(vus(int64(r.Incr.StopTime)), "vus-stop-1%")
			case 0.05:
				b.ReportMetric(vus(int64(r.Incr.StopTime)), "vus-stop-5%")
			case 0.25:
				b.ReportMetric(vus(int64(r.Incr.StopTime)), "vus-stop-25%")
			}
		}
	}
}

// BenchmarkAblationExternalConsistency measures the latency cost the
// sls_fdctl escape hatch removes: gated output waits for the covering
// checkpoint.
func BenchmarkAblationExternalConsistency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := bench.NewMachine()
		srv, err := m.K.Spawn(0, "srv")
		if err != nil {
			b.Fatal(err)
		}
		idle := func() {}
		_ = idle
		g, _ := m.O.Persist("srv", srv)
		m.O.Attach(g, m.Store)
		if _, err := m.O.Checkpoint(g, core.CheckpointOpts{}); err != nil {
			b.Fatal(err)
		}
		ext, _ := m.K.Spawn(0, "client")
		a, bb, _ := m.K.NewSocketPair(srv)
		fd, _ := srv.FDs.Get(bb)
		extFD, _ := ext.FDs.Install(m.K, fd.File, 4 /* ORdWr */)

		// Gated: write, then the wait is one checkpoint period away.
		gatedFrom := m.Clock.Now()
		m.K.Write(srv, a, []byte("reply"))
		if _, err := m.O.Checkpoint(g, core.CheckpointOpts{}); err != nil {
			b.Fatal(err)
		}
		// Release of the gated write waits on durability, not the
		// barrier: drain the flush pipeline before reading.
		if err := m.O.Sync(g); err != nil {
			b.Fatal(err)
		}
		buf := make([]byte, 8)
		if _, err := m.K.Read(ext, extFD, buf); err != nil {
			b.Fatal(err)
		}
		gated := m.Clock.Now() - gatedFrom

		// Ungated (sls_fdctl off): delivery is immediate.
		m.K.FDCtl(srv, a, false)
		unFrom := m.Clock.Now()
		m.K.Write(srv, a, []byte("reply"))
		if _, err := m.K.Read(ext, extFD, buf); err != nil {
			b.Fatal(err)
		}
		ungated := m.Clock.Now() - unFrom

		b.ReportMetric(vus(int64(gated)), "vus-gated")
		b.ReportMetric(vus(int64(ungated)), "vus-ungated")
	}
}

// BenchmarkPipelineKVLSM measures the background flush pipeline on the
// LSM-store workload and emits the stop-vs-flush split as
// BENCH_pipeline.json so regression tooling can track it.
func BenchmarkPipelineKVLSM(b *testing.B) {
	var last *bench.PipelineResult
	for i := 0; i < b.N; i++ {
		r, err := bench.PipelineKVLSM(500, 50)
		if err != nil {
			b.Fatal(err)
		}
		last = r
		b.ReportMetric(vus(int64(r.TotalStop)), "vus-stop")
		b.ReportMetric(vus(int64(r.TotalFull())), "vus-ckpt+flush")
		b.ReportMetric(float64(r.PeakQueueDepth), "peak-queue")
	}
	if err := writePipelineJSON(last); err != nil {
		b.Fatal(err)
	}
}

// TestEmitPipelineBench writes BENCH_pipeline.json on every plain
// `go test` run, so the datapoint exists without -bench.
func TestEmitPipelineBench(t *testing.T) {
	r, err := bench.PipelineKVLSM(500, 50)
	if err != nil {
		t.Fatal(err)
	}
	if err := writePipelineJSON(r); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkFaultMatrix measures checkpoint throughput under injected
// storage faults: the same workload at 0%, 1%, and 5% per-write fault
// rates on the primary, with a clean secondary carrying degraded-mode
// durability.
func BenchmarkFaultMatrix(b *testing.B) {
	var last []bench.FaultPoint
	for i := 0; i < b.N; i++ {
		pts, err := bench.FaultSweep(100, []float64{0, 0.01, 0.05}, 42)
		if err != nil {
			b.Fatal(err)
		}
		last = pts
		for _, pt := range pts {
			name := fmt.Sprintf("ckpt/vsec-%g%%", pt.Rate*100)
			b.ReportMetric(pt.CkptPerVSec, name)
		}
	}
	if err := writeFaultJSON(last); err != nil {
		b.Fatal(err)
	}
}

// TestEmitFaultBench writes BENCH_faults.json on every plain `go test`
// run, so the fault-matrix datapoint exists without -bench.
func TestEmitFaultBench(t *testing.T) {
	pts, err := bench.FaultSweep(100, []float64{0, 0.01, 0.05}, 42)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeFaultJSON(pts); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkRecoveryMatrix measures time-to-recover for lazy restores
// whose primary store read-faults at 0%, 1%, and 5%, demand paging
// failing over to a clean secondary with read-repair. Recovery must be
// bit-correct at every rate or the sweep errors.
func BenchmarkRecoveryMatrix(b *testing.B) {
	var last []bench.RecoveryPoint
	for i := 0; i < b.N; i++ {
		pts, err := bench.RecoverySweep(20, []float64{0, 0.01, 0.05, 1}, 42)
		if err != nil {
			b.Fatal(err)
		}
		last = pts
		for _, pt := range pts {
			b.ReportMetric(vus(int64(pt.TimeToRecover)), fmt.Sprintf("vus-recover-%g%%", pt.Rate*100))
		}
	}
	if err := writeRecoveryJSON(last); err != nil {
		b.Fatal(err)
	}
}

// TestEmitRecoveryBench writes BENCH_recovery.json on every plain
// `go test` run, so the recovery datapoint exists without -bench.
func TestEmitRecoveryBench(t *testing.T) {
	// 0/1/5% transient read-fault rates, plus a dead primary (rate 1):
	// the first three exercise bounded retry, the last full failover
	// with read-repair.
	pts, err := bench.RecoverySweep(20, []float64{0, 0.01, 0.05, 1}, 42)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeRecoveryJSON(pts); err != nil {
		t.Fatal(err)
	}
}

// chaosAt runs the whole-system chaos schedule with every link fault
// probability scaled by rate (drops, duplicates, reorders at rate,
// corruption at half), against fixed moderate storage fault rates. The
// primary store is bounded to ~20 steady-state epochs — enough to hold
// the divergent suffix the permanent partition pins (epochs above the
// replica's catch-up floor are unreclaimable, and with sub-block
// metadata packing each pinned record also pins its pack block) — so
// the space scheduler (watermark reclamation under the replica's
// catch-up floor) is part of the standing fault mix.
func chaosAt(rate float64) (*bench.ChaosReport, error) {
	return bench.ChaosRun(bench.ChaosConfig{
		Seed:                42,
		Checkpoints:         24,
		StepsPerEpoch:       3,
		LinkDrop:            rate,
		LinkDup:             rate,
		LinkReorder:         rate,
		LinkCorrupt:         rate / 2,
		StoreWriteErr:       0.01,
		StoreReadErr:        0.005,
		CrashEvery:          8,
		PartitionAt:         10,
		PartitionLen:        3,
		DivergentEpochs:     4,
		PostEpochs:          6,
		StoreCapacityEpochs: 20,
	})
}

// BenchmarkChaosMatrix measures the replication pipeline under link
// faults: steady-state checkpoint cost, partition catch-up time, and
// promotion time-to-recover at 0%, 1%, and 5% per-frame fault rates.
func BenchmarkChaosMatrix(b *testing.B) {
	var last []*bench.ChaosReport
	for i := 0; i < b.N; i++ {
		last = last[:0]
		for _, rate := range []float64{0, 0.01, 0.05} {
			r, err := chaosAt(rate)
			if err != nil {
				b.Fatal(err)
			}
			last = append(last, r)
			b.ReportMetric(vus(int64(r.PerCheckpoint)), fmt.Sprintf("vus-ckpt-%g%%", rate*100))
			b.ReportMetric(vus(int64(r.PromoteTTR)), fmt.Sprintf("vus-promote-%g%%", rate*100))
			b.ReportMetric(vus(int64(r.CatchUp)), fmt.Sprintf("vus-catchup-%g%%", rate*100))
		}
	}
	if err := writeChaosJSON(last); err != nil {
		b.Fatal(err)
	}
}

// TestEmitChaosBench writes BENCH_chaos.json on every plain `go test`
// run, so the chaos-matrix datapoint exists without -bench.
func TestEmitChaosBench(t *testing.T) {
	var reps []*bench.ChaosReport
	for _, rate := range []float64{0, 0.01, 0.05} {
		r, err := chaosAt(rate)
		if err != nil {
			t.Fatal(err)
		}
		reps = append(reps, r)
	}
	if err := writeChaosJSON(reps); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkSpaceMatrix measures sustained checkpoint throughput as
// device headroom disappears: the same workload on an unbounded device
// and on devices sized to 20, 10, and 5 steady-state epochs, with the
// retention reclaimer and admission control keeping the stream alive.
// Every retained epoch is verified bit-identical against the unbounded
// control before a point is reported.
func BenchmarkSpaceMatrix(b *testing.B) {
	var last []*bench.SpaceReport
	for i := 0; i < b.N; i++ {
		reps, err := bench.SpaceSweep(120, []int{0, 20, 10, 5}, 42)
		if err != nil {
			b.Fatal(err)
		}
		last = reps
		for _, r := range reps {
			b.ReportMetric(r.CkptPerVSec, fmt.Sprintf("ckpt/vsec-%dep", r.CapacityEpochs))
		}
	}
	if err := writeSpaceJSON(last); err != nil {
		b.Fatal(err)
	}
}

// TestEmitSpaceBench writes BENCH_space.json on every plain `go test`
// run, so the space-matrix datapoint exists without -bench.
func TestEmitSpaceBench(t *testing.T) {
	reps, err := bench.SpaceSweep(120, []int{0, 20, 10, 5}, 42)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeSpaceJSON(reps); err != nil {
		t.Fatal(err)
	}
}

func writeSpaceJSON(reps []*bench.SpaceReport) error {
	rows := make([]map[string]any, 0, len(reps))
	for _, r := range reps {
		rows = append(rows, map[string]any{
			"capacity_epochs":  r.CapacityEpochs,
			"capacity_bytes":   r.Capacity,
			"checkpoints":      r.Checkpoints,
			"admitted":         r.Admitted,
			"durable_epoch":    r.Durable,
			"sheds":            r.Sheds,
			"emergency_sheds":  r.EmergencySheds,
			"scans":            r.Scans,
			"emergency_scans":  r.EmergencyScans,
			"epochs_reclaimed": r.EpochsReclaimed,
			"bytes_reclaimed":  r.BytesReclaimed,
			"retained_epochs":  r.RetainedEpochs,
			"max_usage":        r.MaxUsage,
			"final_usage":      r.FinalUsage,
			"ckpt_per_vsec":    r.CkptPerVSec,
		})
	}
	out := map[string]any{
		"benchmark": "space-matrix",
		"seed":      42,
		"points":    rows,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile("BENCH_space.json", append(data, '\n'), 0o644)
}

func writeChaosJSON(reps []*bench.ChaosReport) error {
	rates := []float64{0, 0.01, 0.05}
	rows := make([]map[string]any, 0, len(reps))
	for i, r := range reps {
		rows = append(rows, map[string]any{
			"link_fault_rate":   rates[i],
			"checkpoints":       r.Checkpoints,
			"crashes":           r.Crashes,
			"restores":          r.Restores,
			"partitions":        r.Partitions,
			"link_dropped":      r.LinkDropped,
			"link_injected":     r.LinkInjected,
			"store_injected":    r.StoreInjected,
			"per_checkpoint_us": vus(int64(r.PerCheckpoint)),
			"catchup_us":        vus(int64(r.CatchUp)),
			"promote_ttr_us":    vus(int64(r.PromoteTTR)),
			"promote_gen":       r.PromoteGen,
			"floor":             r.Floor,
			"backfilled":        r.Backfilled,
			"quarantined":       r.Quarantined,
			"stale_rejected":    r.StaleRejected,
			"released":          r.Released,
			"store_capacity":    r.StoreCapacity,
			"epochs_reclaimed":  r.EpochsReclaimed,
			"emergency_scans":   r.EmergencyScans,
		})
	}
	out := map[string]any{
		"benchmark": "chaos-matrix",
		"seed":      42,
		"points":    rows,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile("BENCH_chaos.json", append(data, '\n'), 0o644)
}

func writeRecoveryJSON(pts []bench.RecoveryPoint) error {
	rows := make([]map[string]any, 0, len(pts))
	for _, pt := range pts {
		rows = append(rows, map[string]any{
			"read_fault_rate":    pt.Rate,
			"checkpoints":        pt.Checkpoints,
			"pages":              pt.Pages,
			"time_to_recover_us": vus(int64(pt.TimeToRecover)),
			"failovers":          pt.Failovers,
			"pages_repaired":     pt.PagesRepaired,
			"read_retries":       pt.Retries,
			"faults_injected":    pt.Injected,
		})
	}
	out := map[string]any{
		"benchmark": "recovery-matrix",
		"seed":      42,
		"points":    rows,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile("BENCH_recovery.json", append(data, '\n'), 0o644)
}

func writeFaultJSON(pts []bench.FaultPoint) error {
	rows := make([]map[string]any, 0, len(pts))
	for _, pt := range pts {
		rows = append(rows, map[string]any{
			"fault_rate":      pt.Rate,
			"checkpoints":     pt.Checkpoints,
			"durable_epoch":   pt.Durable,
			"faults_injected": pt.Injected,
			"flush_retries":   pt.Retries,
			"epochs_resynced": pt.Resyncs,
			"virtual_time_us": vus(int64(pt.VirtualTime)),
			"ckpt_per_vsec":   pt.CkptPerVSec,
		})
	}
	out := map[string]any{
		"benchmark": "fault-matrix",
		"seed":      42,
		"points":    rows,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile("BENCH_faults.json", append(data, '\n'), 0o644)
}

// BenchmarkFleetStorm measures fleet density: an open-loop checkpoint
// storm across a growing number of groups multiplexed onto the fixed
// shard-worker pool, reporting p99 stop time and aggregate throughput.
func BenchmarkFleetStorm(b *testing.B) {
	var last []bench.FleetPoint
	for i := 0; i < b.N; i++ {
		pts, err := bench.FleetStorm([]int{16, 64, 256}, 8, 42)
		if err != nil {
			b.Fatal(err)
		}
		last = pts
		for _, pt := range pts {
			b.ReportMetric(vus(int64(pt.StopP99)), fmt.Sprintf("vus-stop-p99-%dg", pt.Groups))
			b.ReportMetric(pt.CkptPerVSec, fmt.Sprintf("ckpt/vsec-%dg", pt.Groups))
		}
	}
	if err := writeFleetJSON(last); err != nil {
		b.Fatal(err)
	}
}

// TestEmitFleetBench writes BENCH_fleet.json on every plain `go test`
// run, so the fleet-density datapoint exists without -bench.
func TestEmitFleetBench(t *testing.T) {
	pts, err := bench.FleetStorm([]int{16, 64, 256}, 8, 42)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeFleetJSON(pts); err != nil {
		t.Fatal(err)
	}
}

func writeFleetJSON(pts []bench.FleetPoint) error {
	rows := make([]map[string]any, 0, len(pts))
	for _, pt := range pts {
		rows = append(rows, map[string]any{
			"groups":        pt.Groups,
			"checkpoints":   pt.Checkpoints,
			"stop_p50_us":   vus(int64(pt.StopP50)),
			"stop_p99_us":   vus(int64(pt.StopP99)),
			"stop_max_us":   vus(int64(pt.StopMax)),
			"ckpt_per_vsec": pt.CkptPerVSec,
			"dispatches":    pt.Dispatches,
			"shards":        pt.Shards,
			"mem_peak":      pt.MemPeak,
			"budget_stalls": pt.BudgetStall,
			"dedup_hits":    pt.DedupHits,
		})
	}
	out := map[string]any{
		"benchmark": "fleet-storm",
		"seed":      42,
		"points":    rows,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile("BENCH_fleet.json", append(data, '\n'), 0o644)
}

func writePipelineJSON(r *bench.PipelineResult) error {
	out := map[string]any{
		"benchmark":          "pipeline-kvlsm",
		"ops":                r.Ops,
		"checkpoints":        r.Checkpoints,
		"total_stop_us":      vus(int64(r.TotalStop)),
		"total_flush_us":     vus(int64(r.TotalFlush)),
		"ckpt_plus_flush_us": vus(int64(r.TotalFull())),
		"max_stop_us":        vus(int64(r.MaxStop)),
		"max_full_us":        vus(int64(r.MaxFull)),
		"peak_queue_depth":   r.PeakQueueDepth,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile("BENCH_pipeline.json", append(data, '\n'), 0o644)
}

var _ = vm.PageSize // keep the import for documentation cross-reference

// --- Quorum replication matrix -------------------------------------

// BenchmarkQuorumMatrix sweeps replica count × link-fault rate under
// majority write quorums, reporting the median durable-ack latency
// (the W-th fastest replica ack) per cell.
func BenchmarkQuorumMatrix(b *testing.B) {
	var last []bench.QuorumPoint
	for i := 0; i < b.N; i++ {
		pts, err := bench.QuorumSweep(40, []int{1, 3, 5}, []float64{0, 0.01, 0.05}, 42)
		if err != nil {
			b.Fatal(err)
		}
		last = pts
		for _, pt := range pts {
			b.ReportMetric(vus(int64(pt.MedianDurable)),
				fmt.Sprintf("vus-durable-n%d-r%g", pt.Replicas, pt.Rate*100))
		}
	}
	if err := writeQuorumJSON(last); err != nil {
		b.Fatal(err)
	}
}

// TestEmitQuorumBench writes BENCH_quorum.json on every plain
// `go test` run, so the quorum datapoint exists without -bench.
func TestEmitQuorumBench(t *testing.T) {
	pts, err := bench.QuorumSweep(40, []int{1, 3, 5}, []float64{0, 0.01, 0.05}, 42)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeQuorumJSON(pts); err != nil {
		t.Fatal(err)
	}
}

func writeQuorumJSON(pts []bench.QuorumPoint) error {
	rows := make([]map[string]any, 0, len(pts))
	for _, pt := range pts {
		rows = append(rows, map[string]any{
			"replicas":        pt.Replicas,
			"write_quorum":    pt.W,
			"fault_rate":      pt.Rate,
			"checkpoints":     pt.Checkpoints,
			"durable_epoch":   pt.Durable,
			"durable_med_us":  vus(int64(pt.MedianDurable)),
			"catchup_epochs":  pt.CatchUpEpochs,
			"pages_sent":      pt.PagesSent,
			"pages_skipped":   pt.PagesSkipped,
			"faults_injected": pt.LinkInjected,
		})
	}
	out := map[string]any{
		"benchmark": "quorum-matrix",
		"seed":      42,
		"points":    rows,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile("BENCH_quorum.json", append(data, '\n'), 0o644)
}

// --- Live migration matrix ------------------------------------------

var migrateSeeds = []int64{1, 7, 42}
var migrateRates = []float64{0, 0.01, 0.05}

// BenchmarkMigrateMatrix sweeps seed × link/store fault rate over the
// full migration chaos schedule (chained planned hops with a
// mid-pre-copy partition, plus the unplanned hot-standby promotion),
// reporting blackout percentiles and TTR per cell.
func BenchmarkMigrateMatrix(b *testing.B) {
	var last []bench.MigratePoint
	for i := 0; i < b.N; i++ {
		pts, err := bench.MigrateSweep(migrateSeeds, migrateRates)
		if err != nil {
			b.Fatal(err)
		}
		last = pts
		for _, pt := range pts {
			b.ReportMetric(pt.BlackoutP99us,
				fmt.Sprintf("vus-blackout-p99-s%d-r%g", pt.Seed, pt.LinkFaultPct))
			b.ReportMetric(pt.TTRus,
				fmt.Sprintf("vus-ttr-s%d-r%g", pt.Seed, pt.LinkFaultPct))
		}
	}
	if err := writeMigrateJSON(last); err != nil {
		b.Fatal(err)
	}
}

// TestMigrateBenchGate is the TTR/blackout regression gate: against
// the committed BENCH_migrate.json baseline, a fresh sweep may not
// exceed 2× the recorded blackout p99 or TTR in any cell. Skipped when
// no baseline has been committed yet.
func TestMigrateBenchGate(t *testing.T) {
	raw, err := os.ReadFile("BENCH_migrate.json")
	if os.IsNotExist(err) {
		t.Skip("no committed BENCH_migrate.json baseline")
	}
	if err != nil {
		t.Fatal(err)
	}
	var baseline struct {
		Points []bench.MigratePoint `json:"points"`
	}
	if err := json.Unmarshal(raw, &baseline); err != nil {
		t.Fatalf("parsing committed BENCH_migrate.json: %v", err)
	}
	if len(baseline.Points) == 0 {
		t.Skip("committed BENCH_migrate.json has no points")
	}
	fresh, err := bench.MigrateSweep(migrateSeeds, migrateRates)
	if err != nil {
		t.Fatal(err)
	}
	byCell := make(map[string]bench.MigratePoint, len(fresh))
	for _, pt := range fresh {
		byCell[fmt.Sprintf("s%d-r%g", pt.Seed, pt.LinkFaultPct)] = pt
	}
	for _, base := range baseline.Points {
		key := fmt.Sprintf("s%d-r%g", base.Seed, base.LinkFaultPct)
		pt, ok := byCell[key]
		if !ok {
			continue // baseline cell no longer in the sweep grid
		}
		if base.BlackoutP99us > 0 && pt.BlackoutP99us > 2*base.BlackoutP99us {
			t.Errorf("cell %s: blackout p99 %.1fµs exceeds 2× committed baseline %.1fµs",
				key, pt.BlackoutP99us, base.BlackoutP99us)
		}
		if base.TTRus > 0 && pt.TTRus > 2*base.TTRus {
			t.Errorf("cell %s: TTR %.1fµs exceeds 2× committed baseline %.1fµs",
				key, pt.TTRus, base.TTRus)
		}
	}
}

// TestEmitMigrateBench writes BENCH_migrate.json on every plain
// `go test` run, so the migration datapoint exists without -bench.
func TestEmitMigrateBench(t *testing.T) {
	pts, err := bench.MigrateSweep(migrateSeeds, migrateRates)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeMigrateJSON(pts); err != nil {
		t.Fatal(err)
	}
}

func writeMigrateJSON(pts []bench.MigratePoint) error {
	out := map[string]any{
		"benchmark": "migrate-matrix",
		"seeds":     migrateSeeds,
		"points":    pts,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile("BENCH_migrate.json", append(data, '\n'), 0o644)
}

// --- Multi-store placement matrix ------------------------------------

var placementStores = []int{2, 4, 8}
var placementRates = []float64{0, 0.01, 0.05}

const placementSweepGroups = 32
const placementSweepSeed = 42

// BenchmarkPlacementMatrix sweeps fleet size × link/store fault rate
// over the full placement chaos schedule (spread under anti-affinity,
// open-loop load, store kill with throttled evacuation, drain),
// reporting evacuation TTR percentiles per cell.
func BenchmarkPlacementMatrix(b *testing.B) {
	var last []bench.PlacementPoint
	for i := 0; i < b.N; i++ {
		pts, err := bench.PlacementSweep(placementSweepGroups, placementStores, placementRates, placementSweepSeed)
		if err != nil {
			b.Fatal(err)
		}
		last = pts
		for _, pt := range pts {
			b.ReportMetric(pt.EvacTTRp99us,
				fmt.Sprintf("vus-evac-ttr-p99-n%d-r%g", pt.Stores, pt.LinkFaultPct))
		}
	}
	if err := writePlacementJSON(last); err != nil {
		b.Fatal(err)
	}
}

// TestPlacementBenchGate is the evacuation-TTR regression gate:
// against the committed BENCH_placement.json baseline, a fresh sweep
// may not exceed 2× the recorded evacuation TTR p99 in any cell.
// Skipped when no baseline has been committed yet.
func TestPlacementBenchGate(t *testing.T) {
	if testing.Short() {
		t.Skip("placement gate sweeps the full matrix; skipped in -short")
	}
	raw, err := os.ReadFile("BENCH_placement.json")
	if os.IsNotExist(err) {
		t.Skip("no committed BENCH_placement.json baseline")
	}
	if err != nil {
		t.Fatal(err)
	}
	var baseline struct {
		Points []bench.PlacementPoint `json:"points"`
	}
	if err := json.Unmarshal(raw, &baseline); err != nil {
		t.Fatalf("parsing committed BENCH_placement.json: %v", err)
	}
	if len(baseline.Points) == 0 {
		t.Skip("committed BENCH_placement.json has no points")
	}
	fresh, err := bench.PlacementSweep(placementSweepGroups, placementStores, placementRates, placementSweepSeed)
	if err != nil {
		t.Fatal(err)
	}
	byCell := make(map[string]bench.PlacementPoint, len(fresh))
	for _, pt := range fresh {
		byCell[fmt.Sprintf("n%d-r%g", pt.Stores, pt.LinkFaultPct)] = pt
	}
	for _, base := range baseline.Points {
		key := fmt.Sprintf("n%d-r%g", base.Stores, base.LinkFaultPct)
		pt, ok := byCell[key]
		if !ok {
			continue // baseline cell no longer in the sweep grid
		}
		if base.EvacTTRp99us > 0 && pt.EvacTTRp99us > 2*base.EvacTTRp99us {
			t.Errorf("cell %s: evacuation TTR p99 %.1fµs exceeds 2× committed baseline %.1fµs",
				key, pt.EvacTTRp99us, base.EvacTTRp99us)
		}
	}
}

// TestEmitPlacementBench writes BENCH_placement.json on every plain
// `go test` run, so the placement datapoint exists without -bench.
func TestEmitPlacementBench(t *testing.T) {
	if testing.Short() {
		t.Skip("keep the committed full-matrix baseline in -short")
	}
	pts, err := bench.PlacementSweep(placementSweepGroups, placementStores, placementRates, placementSweepSeed)
	if err != nil {
		t.Fatal(err)
	}
	if err := writePlacementJSON(pts); err != nil {
		t.Fatal(err)
	}
}

func writePlacementJSON(pts []bench.PlacementPoint) error {
	out := map[string]any{
		"benchmark": "placement-matrix",
		"seed":      placementSweepSeed,
		"stores":    placementStores,
		"points":    pts,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile("BENCH_placement.json", append(data, '\n'), 0o644)
}

// --- Elastic autoscale matrix -----------------------------------------

var autoscaleRates = []float64{0, 0.01, 0.05}

const autoscaleSweepGroups = 24
const autoscaleSweepSeed = 42

// BenchmarkAutoscaleMatrix sweeps link/store fault rate over the full
// scale-storm schedule (open-loop ramp 2→peak→2 with a dead warm
// spare mid-scale-out and a store kill mid-scale-in), reporting
// convergence times per cell.
func BenchmarkAutoscaleMatrix(b *testing.B) {
	var last []bench.AutoscalePoint
	for i := 0; i < b.N; i++ {
		pts, err := bench.AutoscaleSweep(autoscaleSweepGroups, autoscaleRates, autoscaleSweepSeed)
		if err != nil {
			b.Fatal(err)
		}
		last = pts
		for _, pt := range pts {
			b.ReportMetric(pt.ConvergeOutUs, fmt.Sprintf("vus-converge-out-r%g", pt.LinkFaultPct))
			b.ReportMetric(pt.ConvergeInUs, fmt.Sprintf("vus-converge-in-r%g", pt.LinkFaultPct))
		}
	}
	if err := writeAutoscaleJSON(last); err != nil {
		b.Fatal(err)
	}
}

// TestAutoscaleBenchGate is the convergence-time regression gate:
// against the committed BENCH_autoscale.json baseline, a fresh sweep
// may not take more than 2× the recorded ramp-up or ramp-down
// convergence ticks in any cell. Ticks, not wall time: the control
// loop runs on a simulated lane, so tick counts are the stable
// currency across machines. Skipped when no baseline is committed.
func TestAutoscaleBenchGate(t *testing.T) {
	if testing.Short() {
		t.Skip("autoscale gate sweeps the full matrix; skipped in -short")
	}
	raw, err := os.ReadFile("BENCH_autoscale.json")
	if os.IsNotExist(err) {
		t.Skip("no committed BENCH_autoscale.json baseline")
	}
	if err != nil {
		t.Fatal(err)
	}
	var baseline struct {
		Points []bench.AutoscalePoint `json:"points"`
	}
	if err := json.Unmarshal(raw, &baseline); err != nil {
		t.Fatalf("parsing committed BENCH_autoscale.json: %v", err)
	}
	if len(baseline.Points) == 0 {
		t.Skip("committed BENCH_autoscale.json has no points")
	}
	fresh, err := bench.AutoscaleSweep(autoscaleSweepGroups, autoscaleRates, autoscaleSweepSeed)
	if err != nil {
		t.Fatal(err)
	}
	byCell := make(map[float64]bench.AutoscalePoint, len(fresh))
	for _, pt := range fresh {
		byCell[pt.LinkFaultPct] = pt
	}
	for _, base := range baseline.Points {
		pt, ok := byCell[base.LinkFaultPct]
		if !ok {
			continue // baseline cell no longer in the sweep grid
		}
		if base.ConvergeOutTicks > 0 && pt.ConvergeOutTicks > 2*base.ConvergeOutTicks {
			t.Errorf("cell r%g: ramp-up convergence %d ticks exceeds 2× committed baseline %d",
				base.LinkFaultPct, pt.ConvergeOutTicks, base.ConvergeOutTicks)
		}
		if base.ConvergeInTicks > 0 && pt.ConvergeInTicks > 2*base.ConvergeInTicks {
			t.Errorf("cell r%g: ramp-down convergence %d ticks exceeds 2× committed baseline %d",
				base.LinkFaultPct, pt.ConvergeInTicks, base.ConvergeInTicks)
		}
	}
}

// TestEmitAutoscaleBench writes BENCH_autoscale.json on every plain
// `go test` run, so the autoscale datapoint exists without -bench.
func TestEmitAutoscaleBench(t *testing.T) {
	if testing.Short() {
		t.Skip("keep the committed full-matrix baseline in -short")
	}
	pts, err := bench.AutoscaleSweep(autoscaleSweepGroups, autoscaleRates, autoscaleSweepSeed)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeAutoscaleJSON(pts); err != nil {
		t.Fatal(err)
	}
}

func writeAutoscaleJSON(pts []bench.AutoscalePoint) error {
	out := map[string]any{
		"benchmark": "autoscale-matrix",
		"seed":      autoscaleSweepSeed,
		"groups":    autoscaleSweepGroups,
		"points":    pts,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile("BENCH_autoscale.json", append(data, '\n'), 0o644)
}
