package bench

import (
	"fmt"
	"time"

	"aurora/internal/apps/faas"
	"aurora/internal/apps/redis"
	"aurora/internal/core"
	"aurora/internal/criu"
	"aurora/internal/slsfs"
	"aurora/internal/storage"
	"aurora/internal/vm"
)

// FreqResult quantifies the §3 claim: checkpointing up to 100×/second
// with modest overhead.
type FreqResult struct {
	Hz          int
	Checkpoints int
	AvgStop     time.Duration
	MaxStop     time.Duration
	// Overhead is total stop time divided by the checkpoint period
	// budget: the fraction of wall time the application loses.
	Overhead float64
}

// Freq runs n checkpoints at the given rate over a Redis instance with
// a small steady dirty rate.
func Freq(hz, n int, wsBytes int64) (*FreqResult, error) {
	m := NewMachine()
	ri, err := NewRedisInstance(m, wsBytes)
	if err != nil {
		return nil, err
	}
	m.O.Attach(ri.Group, m.Store)
	if _, err := m.O.Checkpoint(ri.Group, core.CheckpointOpts{}); err != nil {
		return nil, err
	}

	period := time.Second / time.Duration(hz)
	var total, worst time.Duration
	for i := 0; i < n; i++ {
		if err := ri.DirtyFraction(0.01); err != nil {
			return nil, err
		}
		bd, err := m.O.Checkpoint(ri.Group, core.CheckpointOpts{})
		if err != nil {
			return nil, err
		}
		total += bd.StopTime
		if bd.StopTime > worst {
			worst = bd.StopTime
		}
	}
	// Overhead counts stop time only: flushes ride the background
	// pipeline. Drain it so every epoch really landed before reporting.
	if err := m.O.Sync(ri.Group); err != nil {
		return nil, err
	}
	return &FreqResult{
		Hz:          hz,
		Checkpoints: n,
		AvgStop:     total / time.Duration(n),
		MaxStop:     worst,
		Overhead:    float64(total) / float64(time.Duration(n)*period),
	}, nil
}

// Print renders the frequency claim.
func (r *FreqResult) Print() {
	fmt.Printf("Claim (§3): %d checkpoints at %d Hz\n", r.Checkpoints, r.Hz)
	fmt.Printf("  avg stop %s, max stop %s, application overhead %.2f%%\n\n",
		storage.Micros(r.AvgStop), storage.Micros(r.MaxStop), r.Overhead*100)
}

// DensityResult quantifies the §4 serverless-density claim.
type DensityResult struct {
	Functions       int
	RuntimeBlocks   int
	BlocksPerFn     float64
	BytesPerFn      int64
	DedupHits       int64
	NaiveBytesPerFn int64 // what each function would cost without dedup
}

// Density deploys n functions over one runtime image and measures
// store growth per function.
func Density(n int) (*DensityResult, error) {
	m := NewMachine()
	rt := faas.NewRuntime(m.O, m.Store, nil) // store-only: measure disk density
	if _, err := rt.BuildBase(); err != nil {
		return nil, err
	}
	base := m.Objs.Stats()
	for i := 0; i < n; i++ {
		if _, err := rt.Deploy(fmt.Sprintf("fn-%04d", i), []byte(fmt.Sprintf("function-config-%04d", i))); err != nil {
			return nil, err
		}
	}
	after := m.Objs.Stats()
	added := after.Blocks - base.Blocks
	return &DensityResult{
		Functions:       n,
		RuntimeBlocks:   base.Blocks,
		BlocksPerFn:     float64(added) / float64(n),
		BytesPerFn:      int64(added) * 4096 / int64(n),
		DedupHits:       after.DedupHits - base.DedupHits,
		NaiveBytesPerFn: int64(base.Blocks) * 4096,
	}, nil
}

// Print renders the density claim.
func (r *DensityResult) Print() {
	fmt.Printf("Claim (§4): serverless density, %d functions over one runtime image\n", r.Functions)
	fmt.Printf("  runtime image: %d blocks (%s)\n", r.RuntimeBlocks, fmtBytes(int64(r.RuntimeBlocks)*4096))
	fmt.Printf("  per function: %.1f blocks (%s) vs %s without dedup — %.0fx density\n",
		r.BlocksPerFn, fmtBytes(r.BytesPerFn), fmtBytes(r.NaiveBytesPerFn),
		float64(r.NaiveBytesPerFn)/float64(max64(r.BytesPerFn, 1)))
	fmt.Printf("  dedup hits: %d\n\n", r.DedupHits)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// RedisPersistenceResult compares the per-operation durability cost of
// the three engines (the §4 database claim).
type RedisPersistenceResult struct {
	Ops          int
	AOFPerOp     time.Duration
	AuroraPerOp  time.Duration
	ForkSnapshot time.Duration // one BGSAVE stop cost
	AuroraCkpt   time.Duration // one sls_checkpoint stop cost
}

// RedisPersistence measures virtual time per SET under the AOF engine
// vs the Aurora engine, plus the snapshot costs of fork vs checkpoint.
func RedisPersistence(ops int, wsBytes int64) (*RedisPersistenceResult, error) {
	out := &RedisPersistenceResult{Ops: ops}
	val := make([]byte, 512)

	// AOF per-op cost (fsync every op: the durable configuration).
	{
		m := NewMachine()
		fs, err := newFS(m)
		if err != nil {
			return nil, err
		}
		aof, err := redis.NewAOF(fs, "/appendonly.aof", 1)
		if err != nil {
			return nil, err
		}
		p, st, err := redis.Spawn(m.K, 0, "/redis.sock", 1024, wsBytes, aof)
		if err != nil {
			return nil, err
		}
		start := m.Clock.Now()
		for i := 0; i < ops; i++ {
			if err := st.Set([]byte(fmt.Sprintf("k-%06d", i)), val); err != nil {
				return nil, err
			}
			if err := aof.OnMutation(m.K, p, []byte(fmt.Sprintf("SET k-%06d <512B>", i))); err != nil {
				return nil, err
			}
		}
		out.AOFPerOp = (m.Clock.Now() - start) / time.Duration(ops)

		// Fork snapshot cost on the same instance.
		snapStart := m.Clock.Now()
		fork := &redis.ForkSnapshot{FS: fs, Path: "/dump.rdb"}
		if err := fork.Snapshot(m.K, p); err != nil {
			return nil, err
		}
		out.ForkSnapshot = m.Clock.Now() - snapStart
	}

	// Aurora per-op cost (sls_ntflush each op).
	{
		m := NewMachine()
		eng := redis.NewAurora(m.API, ops*10) // no auto checkpoint inside the loop
		p, st, err := redis.Spawn(m.K, 0, "/redis.sock", 1024, wsBytes, eng)
		if err != nil {
			return nil, err
		}
		g, err := m.O.Persist("redis", p)
		if err != nil {
			return nil, err
		}
		m.O.Attach(g, m.Store)
		if _, err := m.O.Checkpoint(g, core.CheckpointOpts{}); err != nil {
			return nil, err
		}
		start := m.Clock.Now()
		for i := 0; i < ops; i++ {
			if err := st.Set([]byte(fmt.Sprintf("k-%06d", i)), val); err != nil {
				return nil, err
			}
			if err := eng.OnMutation(m.K, p, []byte(fmt.Sprintf("SET k-%06d <512B>", i))); err != nil {
				return nil, err
			}
		}
		out.AuroraPerOp = (m.Clock.Now() - start) / time.Duration(ops)

		bd, err := m.O.Checkpoint(g, core.CheckpointOpts{})
		if err != nil {
			return nil, err
		}
		out.AuroraCkpt = bd.StopTime
	}
	return out, nil
}

// Print renders the database claim.
func (r *RedisPersistenceResult) Print() {
	fmt.Printf("Claim (§4): Redis persistence engines, %d SET operations\n", r.Ops)
	fmt.Printf("  per-op durability:  AOF+fsync %s   Aurora ntflush %s  (%.1fx)\n",
		storage.Micros(r.AOFPerOp), storage.Micros(r.AuroraPerOp),
		float64(r.AOFPerOp)/float64(maxDur(r.AuroraPerOp, 1)))
	fmt.Printf("  snapshot stop:      fork+dump %s   sls_checkpoint %s  (%.1fx)\n\n",
		storage.Micros(r.ForkSnapshot), storage.Micros(r.AuroraCkpt),
		float64(r.ForkSnapshot)/float64(maxDur(r.AuroraCkpt, 1)))
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

// CRIUResult compares the syscall-boundary baseline against Aurora's
// incremental checkpoint (the §2 claim).
type CRIUResult struct {
	WorkingSet int64
	CRIUStop   time.Duration
	AuroraStop time.Duration
	CRIUBytes  int64
}

// CRIUCompare checkpoints the same application both ways.
func CRIUCompare(wsBytes int64) (*CRIUResult, error) {
	m := NewMachine()
	ri, err := NewRedisInstance(m, wsBytes)
	if err != nil {
		return nil, err
	}
	m.O.Attach(ri.Group, m.Store)
	if _, err := m.O.Checkpoint(ri.Group, core.CheckpointOpts{}); err != nil {
		return nil, err
	}
	if err := ri.DirtyFraction(0.01); err != nil {
		return nil, err
	}
	aurora, err := m.O.Checkpoint(ri.Group, core.CheckpointOpts{})
	if err != nil {
		return nil, err
	}

	dev := storage.NewMemDevice(storage.ParamsOptaneNVMe, m.Clock)
	c := criu.New(m.K, dev)
	cb, err := c.Checkpoint(ri.Proc)
	if err != nil {
		return nil, err
	}
	return &CRIUResult{
		WorkingSet: wsBytes,
		CRIUStop:   cb.StopTime,
		AuroraStop: aurora.StopTime,
		CRIUBytes:  cb.Bytes,
	}, nil
}

// Print renders the comparison.
func (r *CRIUResult) Print() {
	fmt.Printf("Claim (§2): CRIU-style vs Aurora incremental, working set %s\n", fmtBytes(r.WorkingSet))
	fmt.Printf("  CRIU stop %s (image %s, frozen throughout)\n",
		storage.Micros(r.CRIUStop), fmtBytes(r.CRIUBytes))
	fmt.Printf("  Aurora stop %s  (%.0fx lower)\n\n",
		storage.Micros(r.AuroraStop), float64(r.CRIUStop)/float64(maxDur(r.AuroraStop, 1)))
}

// WarmStartResult compares cold boot with restore-based warm start.
type WarmStartResult struct {
	Cold     time.Duration
	WarmMem  time.Duration
	WarmDisk time.Duration
}

// WarmStart measures serverless start paths.
func WarmStart() (*WarmStartResult, error) {
	m := NewMachine()
	rt := faas.NewRuntime(m.O, m.Store, m.Mem)
	rt.InitLoops = 200_000
	if _, err := rt.Deploy("ws", nil); err != nil {
		return nil, err
	}

	coldStart := m.Clock.Now()
	if _, err := rt.ColdStart(1); err != nil {
		return nil, err
	}
	cold := m.Clock.Now() - coldStart

	fn, err := rt.Function("ws")
	if err != nil {
		return nil, err
	}
	img, _, err := m.Mem.Load(fn.Group.ID, 0)
	if err != nil {
		return nil, err
	}
	_, memBD, err := m.O.RestoreImage(img, 0, core.RestoreOpts{Lazy: true})
	if err != nil {
		return nil, err
	}
	dimg, rt2, err := m.Store.Load(fn.Group.ID, 0)
	if err != nil {
		return nil, err
	}
	_, diskBD, err := m.O.RestoreImage(dimg, rt2, core.RestoreOpts{Lazy: true})
	if err != nil {
		return nil, err
	}
	return &WarmStartResult{Cold: cold, WarmMem: memBD.Total, WarmDisk: diskBD.Total}, nil
}

// Print renders the warm-start comparison.
func (r *WarmStartResult) Print() {
	fmt.Printf("Claim (§4): serverless starts\n")
	fmt.Printf("  cold boot %s, warm restore (memory) %s, warm restore (disk) %s\n\n",
		storage.Micros(r.Cold), storage.Micros(r.WarmMem), storage.Micros(r.WarmDisk))
}

// --- ablations ---

// AblationCOWResult contrasts Aurora's shared-COW checkpointing with a
// fork-style private-COW alternative on a shared-memory workload.
type AblationCOWResult struct {
	SharedFaults   int64
	SharedResident int64
	// ForkBreaksSharing is always true: it documents the semantic
	// failure (writes diverge) that motivates Aurora's design.
	ForkBreaksSharing bool
}

// AblationSharedCOW demonstrates the design choice: two processes
// share a segment; after an Aurora checkpoint a write by one remains
// visible to the other, at the cost of exactly one COW fault.
func AblationSharedCOW() (*AblationCOWResult, error) {
	m := NewMachine()
	p1, err := m.K.Spawn(0, "writer")
	if err != nil {
		return nil, err
	}
	p2, err := m.K.Fork(p1)
	if err != nil {
		return nil, err
	}
	seg, err := m.K.ShmGet(1, 64*vm.PageSize)
	if err != nil {
		return nil, err
	}
	a1, err := m.K.ShmAttach(p1, seg)
	if err != nil {
		return nil, err
	}
	a2, err := m.K.ShmAttach(p2, seg)
	if err != nil {
		return nil, err
	}
	if err := p1.WriteMem(a1, make([]byte, 64*vm.PageSize)); err != nil {
		return nil, err
	}

	g, err := m.O.Persist("shm", p1)
	if err != nil {
		return nil, err
	}
	m.O.Attach(g, m.Store)
	if _, err := m.O.Checkpoint(g, core.CheckpointOpts{}); err != nil {
		return nil, err
	}

	before := m.K.Meter.CowFaults.Load()
	if err := p1.WriteMem(a1, []byte("post-ckpt")); err != nil {
		return nil, err
	}
	buf := make([]byte, 9)
	if err := p2.ReadMem(a2, buf); err != nil {
		return nil, err
	}
	if string(buf) != "post-ckpt" {
		return nil, fmt.Errorf("bench: Aurora COW broke sharing")
	}
	return &AblationCOWResult{
		SharedFaults:   m.K.Meter.CowFaults.Load() - before,
		SharedResident: m.K.Mem.Resident(),
		// Fork-style COW gives the writer a private page: the sibling
		// would still read the old data (see vm's fork tests).
		ForkBreaksSharing: true,
	}, nil
}

// AblationDedupResult measures the store with and without dedup value.
type AblationDedupResult struct {
	Checkpoints  int
	BlocksStored int
	LogicalPages int64
	SavedFrac    float64
}

// AblationDedup checkpoints the same mostly-idle instance repeatedly;
// dedup absorbs the unchanged pages.
func AblationDedup(rounds int, wsBytes int64) (*AblationDedupResult, error) {
	m := NewMachine()
	ri, err := NewRedisInstance(m, wsBytes)
	if err != nil {
		return nil, err
	}
	m.O.Attach(ri.Group, m.Store)
	for i := 0; i < rounds; i++ {
		// Full checkpoints every round: without dedup this would store
		// the working set each time.
		if _, err := m.O.Checkpoint(ri.Group, core.CheckpointOpts{Full: true}); err != nil {
			return nil, err
		}
	}
	if err := m.O.Sync(ri.Group); err != nil {
		return nil, err
	}
	st := m.Objs.Stats()
	logical := st.LogicalBytes / 4096
	return &AblationDedupResult{
		Checkpoints:  rounds,
		BlocksStored: st.Blocks,
		LogicalPages: logical,
		SavedFrac:    1 - float64(st.Blocks)/float64(logical),
	}, nil
}

// newFS builds an Aurora FS on the machine's store.
func newFS(m *Machine) (*slsfs.FS, error) {
	fs := slsfs.New(m.Objs, 1000)
	m.O.AttachFS(fs)
	return fs, nil
}
