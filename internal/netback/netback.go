// Package netback implements Aurora's network backend: sending and
// receiving application checkpoints between machines (`sls send` /
// `sls recv`), continuous replication of incremental checkpoints for
// fault tolerance, and live migration.
//
// Transport is any io.ReadWriter — net.Conn in production, net.Pipe in
// tests, a file for `sls send -o image.aur`. Frames carry consolidated
// images (one-shot sends) or deltas (replication streams). The modeled
// transfer cost follows a 10 GbE NIC profile.
package netback

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
	"time"

	"aurora/internal/core"
	"aurora/internal/objstore"
	"aurora/internal/storage"
	"aurora/internal/vm"
)

// Frame types on the wire.
const (
	frameImage byte = iota + 1 // consolidated image (one-shot send)
	frameDelta                 // incremental delta (replication)
	frameBye                   // end of stream
)

// Errors.
var (
	ErrBadFrame = errors.New("netback: bad frame")
	ErrClosed   = errors.New("netback: stream closed")
	// ErrCorruptFrame marks a frame whose payload failed its CRC: the
	// bytes were damaged in flight. The connection is unusable from
	// here (framing may have lost sync), so callers treat it like a
	// connection loss and resume via the hello handshake.
	ErrCorruptFrame = errors.New("netback: corrupt frame")
)

// frameHdrSize is the wire header: [type u8][len u64][crc32c u32].
// The CRC (Castagnoli, as used end-to-end by the object store) covers
// the payload, so a flipped bit on the wire is detected at the frame
// layer instead of surfacing as a garbled image decode.
const frameHdrSize = 13

var frameCRC = crc32.MakeTable(crc32.Castagnoli)

// writeFrame emits [type][len][crc32c][payload].
func writeFrame(w io.Writer, typ byte, payload []byte) error {
	var hdr [frameHdrSize]byte
	hdr[0] = typ
	binary.LittleEndian.PutUint64(hdr[1:9], uint64(len(payload)))
	binary.LittleEndian.PutUint32(hdr[9:], crc32.Checksum(payload, frameCRC))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) == 0 {
		// A zero-length write would block forever on synchronous
		// pipes: the reader never issues a matching zero-byte read.
		return nil
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one frame, verifying the payload CRC.
func readFrame(r io.Reader) (byte, []byte, error) {
	var hdr [frameHdrSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint64(hdr[1:9])
	if n > 1<<32 {
		return 0, nil, ErrBadFrame
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	if got, want := crc32.Checksum(payload, frameCRC), binary.LittleEndian.Uint32(hdr[9:]); got != want {
		return 0, nil, fmt.Errorf("%w: type %d payload %d bytes: crc %08x, want %08x",
			ErrCorruptFrame, hdr[0], n, got, want)
	}
	return hdr[0], payload, nil
}

// Sender streams checkpoints to a remote host.
type Sender struct {
	mu    sync.Mutex
	w     io.Writer
	clock *storage.Clock
	nic   storage.DeviceParams
	sent  int64 // bytes
}

// NewSender wraps a connection.
func NewSender(w io.Writer, clock *storage.Clock) *Sender {
	return &Sender{w: w, clock: clock, nic: storage.ParamsNIC10G}
}

// SentBytes reports the bytes placed on the wire.
func (s *Sender) SentBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sent
}

// charge models the NIC transfer time.
func (s *Sender) charge(n int) time.Duration {
	cost := s.nic.Latency + time.Duration(int64(n)*int64(time.Second)/s.nic.WriteBW)
	if s.clock != nil {
		s.clock.Advance(cost)
	}
	return cost
}

// SendImage transmits a consolidated checkpoint (`sls send`): the
// complete state needed to recreate the application on the remote.
func (s *Sender) SendImage(img *core.Image) (time.Duration, error) {
	payload := img.Encode()
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := writeFrame(s.w, frameImage, payload); err != nil {
		return 0, err
	}
	s.sent += int64(len(payload))
	return s.charge(len(payload)), nil
}

// SendDelta transmits one incremental checkpoint of a replication
// stream.
func (s *Sender) SendDelta(img *core.Image) (time.Duration, error) {
	payload := img.EncodeDelta()
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := writeFrame(s.w, frameDelta, payload); err != nil {
		return 0, err
	}
	s.sent += int64(len(payload))
	return s.charge(len(payload)), nil
}

// Close ends the stream.
func (s *Sender) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return writeFrame(s.w, frameBye, nil)
}

// Backend adapts a Sender into a core.Backend: every checkpoint of the
// group is replicated to the remote as it happens. Load is not served
// (the data lives on the other machine), so a remote backend is
// usually attached alongside a local one.
type Backend struct {
	sender *Sender
}

// NewBackend wraps a sender as a checkpoint backend.
func NewBackend(s *Sender) *Backend { return &Backend{sender: s} }

// Name implements core.Backend.
func (b *Backend) Name() string { return "remote" }

// Ephemeral implements core.Backend: a replica on another machine is
// durable for external-consistency purposes.
func (b *Backend) Ephemeral() bool { return false }

// Flush implements core.Backend.
func (b *Backend) Flush(img *core.Image) (time.Duration, error) {
	return b.sender.SendDelta(img)
}

// Load implements core.Backend.
func (b *Backend) Load(group, epoch uint64) (*core.Image, time.Duration, error) {
	return nil, 0, core.ErrNoImage
}

// Receiver accepts checkpoints from a remote host (`sls recv`). It
// maintains the newest image chain per group, ready to restore — the
// warm-standby half of fault tolerance.
type Receiver struct {
	pm    *vm.PhysMem
	clock *storage.Clock
	nic   storage.DeviceParams

	mu     sync.Mutex
	chains map[uint64][]*core.Image // group -> images sorted by epoch
	fences map[uint64]uint64        // group -> highest generation witnessed or adopted
	recvd  int64

	// blockIdx maps content hash -> page bytes across every held
	// image, rebuilt lazily (see FetchBlock). blockStale flags that
	// new images arrived since the last build.
	blockIdx   map[objstore.Hash][]byte
	blockStale bool

	// blockSrcs are extra block providers compact-delta materialization
	// may resolve hash refs from (typically the standby machine's own
	// object store); needsSent counts need replies sent for refs no
	// source could resolve.
	blockSrcs []objstore.BlockSource
	needsSent int64
}

// NewReceiver creates a receiver allocating frames from pm.
func NewReceiver(pm *vm.PhysMem, clock *storage.Clock) *Receiver {
	return &Receiver{
		pm:     pm,
		clock:  clock,
		nic:    storage.ParamsNIC10G,
		chains: make(map[uint64][]*core.Image),
		fences: make(map[uint64]uint64),
	}
}

// ReceivedBytes reports bytes taken off the wire.
func (r *Receiver) ReceivedBytes() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.recvd
}

// Serve consumes frames until the stream closes, linking deltas into
// per-group chains. It returns the number of frames applied.
func (r *Receiver) Serve(conn io.Reader) (int, error) {
	applied := 0
	for {
		typ, payload, err := readFrame(conn)
		if err != nil {
			if err == io.EOF && applied > 0 {
				return applied, nil
			}
			return applied, err
		}
		r.mu.Lock()
		r.recvd += int64(len(payload))
		r.mu.Unlock()
		if r.clock != nil {
			r.clock.Advance(r.nic.Latency + time.Duration(int64(len(payload))*int64(time.Second)/r.nic.ReadBW))
		}
		switch typ {
		case frameBye:
			return applied, nil
		case frameImage:
			img, err := core.DecodeImage(payload, r.pm)
			if err != nil {
				return applied, err
			}
			r.install(img)
			applied++
		case frameDelta:
			img, err := core.DecodeDelta(payload, r.pm)
			if err != nil {
				return applied, err
			}
			r.link(img)
			applied++
		default:
			return applied, fmt.Errorf("%w: type %d", ErrBadFrame, typ)
		}
	}
}

// install replaces a group's chain with one consolidated image.
func (r *Receiver) install(img *core.Image) {
	r.mu.Lock()
	r.chains[img.Group] = []*core.Image{img}
	if img.Gen > r.fences[img.Group] {
		r.fences[img.Group] = img.Gen
	}
	r.blockStale = true
	r.mu.Unlock()
}

// FetchBlock implements objstore.BlockSource over the receiver's held
// images: a replica holds bit-identical page bytes under the same
// content hashes as any store of the group, so it can heal a primary's
// rotted block (Scrub) or serve a page during demand-paging failover.
// The hash index is rebuilt lazily after new frames arrive.
func (r *Receiver) FetchBlock(h objstore.Hash) ([]byte, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.blockIdx == nil || r.blockStale {
		r.blockIdx = make(map[objstore.Hash][]byte)
		for _, chain := range r.chains {
			for _, img := range chain {
				for _, mi := range img.Memory {
					for idx := range mi.Pages {
						d := mi.PageData(idx)
						r.blockIdx[sha256.Sum256(d)] = d
					}
					for idx := range mi.SwapData {
						d := mi.PageData(idx)
						r.blockIdx[sha256.Sum256(d)] = d
					}
				}
			}
		}
		r.blockStale = false
	}
	d, ok := r.blockIdx[h]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), d...), true
}

// AttachBlockSource registers an extra block provider (the standby's
// own object store) that compact-delta materialization consults when a
// hash ref is not covered by the receiver's held images.
func (r *Receiver) AttachBlockSource(src objstore.BlockSource) {
	r.mu.Lock()
	r.blockSrcs = append(r.blockSrcs, src)
	r.mu.Unlock()
}

// NeedsSent reports how many need replies (resend requests for compact
// deltas with unresolvable hash refs) this receiver has issued.
func (r *Receiver) NeedsSent() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.needsSent
}

// resolveBlock materializes a compact-delta hash ref: first from the
// receiver's own chains (FetchBlock), then from any attached block
// source.
func (r *Receiver) resolveBlock(h objstore.Hash) ([]byte, bool) {
	if d, ok := r.FetchBlock(h); ok {
		return d, true
	}
	r.mu.Lock()
	srcs := append([]objstore.BlockSource(nil), r.blockSrcs...)
	r.mu.Unlock()
	for _, s := range srcs {
		if d, ok := s.FetchBlock(h); ok {
			return d, true
		}
	}
	return nil, false
}

// AdoptImage implements core.ReplicaRepairTarget: read-repair after a
// quorum promotion links an image this replica missed straight into
// its chain, as if it had arrived over the wire.
func (r *Receiver) AdoptImage(img *core.Image) {
	r.link(img)
}

// link merges an incremental delta into its group's chain. A pipelined
// sender flushes epochs from concurrent workers, so deltas may arrive
// out of epoch order (and, after a retried flush, twice); the chain is
// kept sorted by epoch and the Prev links rebuilt so restores always
// walk a consistent history.
func (r *Receiver) link(img *core.Image) {
	r.mu.Lock()
	defer r.mu.Unlock()
	chain := r.chains[img.Group]
	replaced := false
	for i, have := range chain {
		if have.Epoch == img.Epoch {
			chain[i] = img
			replaced = true
			break
		}
	}
	if !replaced {
		chain = append(chain, img)
		for i := len(chain) - 1; i > 0 && chain[i-1].Epoch > chain[i].Epoch; i-- {
			chain[i-1], chain[i] = chain[i], chain[i-1]
		}
	}
	for i, im := range chain {
		if im.Full {
			continue
		}
		if i == 0 {
			im.Prev = nil
		} else {
			im.Prev = chain[i-1]
		}
	}
	r.chains[img.Group] = chain
	if img.Gen > r.fences[img.Group] {
		r.fences[img.Group] = img.Gen
	}
	r.blockStale = true
}

// Latest returns the newest image of a group.
func (r *Receiver) Latest(group uint64) (*core.Image, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	chain, ok := r.chains[group]
	if !ok || len(chain) == 0 {
		return nil, core.ErrNoImage
	}
	return chain[len(chain)-1], nil
}

// Groups lists groups with received state.
func (r *Receiver) Groups() []uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]uint64, 0, len(r.chains))
	for g := range r.chains {
		out = append(out, g)
	}
	return out
}

// The methods below make a Receiver a core.ReplicaSource: the view
// promotion consumes when this replica is elected the new primary.

// ImageAt returns the replica's image for (group, epoch), linked into
// its chain.
func (r *Receiver) ImageAt(group, epoch uint64) (*core.Image, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, img := range r.chains[group] {
		if img.Epoch == epoch {
			return img, nil
		}
	}
	return nil, fmt.Errorf("netback: replica holds no epoch %d of group %d: %w", epoch, group, core.ErrNoImage)
}

// ContiguousEpoch is the newest epoch with no holes below it — the
// replica's durable line, and the floor a promotion restores from.
func (r *Receiver) ContiguousEpoch(group uint64) uint64 {
	return r.lastContiguous(group)
}

// ReplicaEpochs lists every epoch held for the group, ascending.
func (r *Receiver) ReplicaEpochs(group uint64) []uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	chain := r.chains[group]
	out := make([]uint64, 0, len(chain))
	for _, img := range chain {
		out = append(out, img.Epoch)
	}
	return out
}

// FenceGen is the highest store generation witnessed in received
// images or adopted via AdoptFence for the group.
func (r *Receiver) FenceGen(group uint64) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.fences[group]
}

// AdoptFence raises the replica-side fence: deltas stamped with an
// older generation are answered with a fencing rejection instead of an
// ack (see ServeReplica). Raise-only; an older generation is ignored.
func (r *Receiver) AdoptFence(group, gen uint64) {
	r.mu.Lock()
	if gen > r.fences[group] {
		r.fences[group] = gen
	}
	r.mu.Unlock()
}

// Migrate performs a live migration: checkpoint the group, stream the
// consolidated image, restore it on the destination orchestrator, and
// kill the source. It returns the destination group and the modeled
// transfer time.
func Migrate(src *core.Orchestrator, g *core.Group, dst *core.Orchestrator, opts core.RestoreOpts) (*core.Group, time.Duration, error) {
	if _, err := src.Checkpoint(g, core.CheckpointOpts{SkipFlush: true}); err != nil {
		return nil, 0, err
	}
	img := g.LastImage()
	if img == nil {
		return nil, 0, core.ErrNoImage
	}

	pr, pw := io.Pipe()
	sender := NewSender(pw, src.K.Clock)
	recv := NewReceiver(dst.K.Mem, dst.K.Clock)

	var xfer time.Duration
	var sendErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		xfer, sendErr = sender.SendImage(img)
		sender.Close()
		pw.Close()
	}()
	if _, err := recv.Serve(pr); err != nil {
		return nil, 0, err
	}
	<-done
	if sendErr != nil {
		return nil, 0, sendErr
	}

	rimg, err := recv.Latest(g.ID)
	if err != nil {
		return nil, 0, err
	}
	ng, _, err := dst.RestoreImage(rimg, 0, opts)
	if err != nil {
		return nil, 0, err
	}
	// Tear down the source: migration moves, it does not copy.
	for _, pid := range g.PIDs() {
		if p, err := src.K.Process(pid); err == nil {
			src.K.Exit(p, 0)
			src.K.Reap(p)
		}
	}
	src.Unpersist(g)
	return ng, xfer, nil
}
