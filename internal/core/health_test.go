package core

import (
	"errors"
	"sync"
	"testing"
	"time"

	"aurora/internal/kernel"
	"aurora/internal/objstore"
	"aurora/internal/storage"
	"aurora/internal/vm"
)

// ledgerBackend is a non-ephemeral backend recording the order of
// epochs it accepted, failing while err is set.
type ledgerBackend struct {
	mu     sync.Mutex
	err    error
	epochs []uint64
}

func (b *ledgerBackend) setErr(err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.err = err
}

func (b *ledgerBackend) accepted() []uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]uint64(nil), b.epochs...)
}

func (b *ledgerBackend) Name() string    { return "ledger" }
func (b *ledgerBackend) Ephemeral() bool { return false }

func (b *ledgerBackend) Flush(img *Image) (time.Duration, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.err != nil {
		return 0, b.err
	}
	b.epochs = append(b.epochs, img.Epoch)
	return time.Microsecond, nil
}

func (b *ledgerBackend) Load(group, epoch uint64) (*Image, time.Duration, error) {
	return nil, 0, ErrNoImage
}

// TestDegradedModeKeepsDurableAdvancing is degraded durability: with a
// healthy store and a sick peer, g.durable keeps advancing while the
// sick backend queues missed epochs, and Sync resyncs it in order.
func TestDegradedModeKeepsDurableAdvancing(t *testing.T) {
	r := newRig(t)
	r.o.FlushWorkers = 1
	p := spawnCounter(t, r)
	g, _ := r.o.Persist("app", p)
	lb := &ledgerBackend{}
	r.o.Attach(g, r.store)
	r.o.Attach(g, lb)

	r.k.Run(3)
	if _, err := r.o.Checkpoint(g, CheckpointOpts{}); err != nil {
		t.Fatal(err)
	}
	r.o.Drain(g)

	injected := errors.New("cable unplugged")
	lb.setErr(injected)
	for i := 0; i < 2; i++ {
		r.k.Run(3)
		if _, err := r.o.Checkpoint(g, CheckpointOpts{}); err != nil {
			t.Fatal(err)
		}
	}
	r.o.Drain(g)

	// The healthy store carried epochs 2 and 3 to retirement.
	if got := g.Durable(); got != 3 {
		t.Fatalf("durable = %d, want 3 (degraded mode must keep advancing)", got)
	}
	infos := g.Health()
	if len(infos) != 2 {
		t.Fatalf("health entries = %d, want 2", len(infos))
	}
	if infos[0].State != BackendHealthy || infos[0].Pending != 0 {
		t.Fatalf("store health = %+v, want healthy/0", infos[0])
	}
	if infos[1].State == BackendHealthy || infos[1].Pending != 2 {
		t.Fatalf("ledger health = %+v, want degraded with 2 queued", infos[1])
	}
	if infos[1].LastErr == "" {
		t.Fatal("degraded backend must surface its last error")
	}

	// Recovery: Sync forces the resync, replaying missed epochs in order.
	lb.setErr(nil)
	if err := r.o.Sync(g); err != nil {
		t.Fatalf("sync after recovery: %v", err)
	}
	infos = g.Health()
	if infos[1].State != BackendHealthy || infos[1].Pending != 0 {
		t.Fatalf("ledger health after resync = %+v, want healthy/0", infos[1])
	}
	if infos[1].Resyncs != 2 {
		t.Fatalf("resyncs = %d, want 2", infos[1].Resyncs)
	}
	if got := lb.accepted(); len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("ledger accepted %v, want [1 2 3] in order", got)
	}
}

// TestBackendDownTypedErrors walks a lone backend down the
// healthy → degraded → down ladder and checks the typed error chain
// surfaces through Sync via errors.Is.
func TestBackendDownTypedErrors(t *testing.T) {
	r := newRig(t)
	r.o.FlushWorkers = 1
	r.o.FlushRetries = 1
	r.o.DownAfter = 2
	p := spawnCounter(t, r)
	g, _ := r.o.Persist("app", p)
	lb := &ledgerBackend{}
	r.o.Attach(g, lb)

	injected := errors.New("dead controller")
	lb.setErr(injected)
	for i := 0; i < 3; i++ {
		r.k.Run(2)
		if _, err := r.o.Checkpoint(g, CheckpointOpts{}); err != nil {
			t.Fatal(err)
		}
		r.o.Drain(g)
	}
	// The only backend failed every epoch: nothing retired.
	if got := g.Durable(); got != 0 {
		t.Fatalf("durable = %d, want 0 with all flushes failing", got)
	}
	if infos := g.Health(); infos[0].State != BackendDown {
		t.Fatalf("health = %+v, want down after repeated failures", infos[0])
	}
	err := r.o.Sync(g)
	if err == nil {
		t.Fatal("Sync with a down backend must fail")
	}
	if !errors.Is(err, injected) {
		t.Fatalf("Sync error %v must wrap the injected fault", err)
	}

	// Queued-while-down epochs carry the typed ErrBackendDown.
	r.k.Run(2)
	if _, err := r.o.Checkpoint(g, CheckpointOpts{}); err != nil {
		t.Fatal(err)
	}
	r.o.Drain(g)
	lb.setErr(nil)
	if err := r.o.Sync(g); err != nil {
		t.Fatalf("sync after recovery: %v", err)
	}
	if got := g.Durable(); got != 4 {
		t.Fatalf("durable = %d, want 4 after recovery", got)
	}
	if got := lb.accepted(); len(got) != 4 {
		t.Fatalf("ledger accepted %v, want all four epochs replayed", got)
	}
	for i, e := range lb.accepted() {
		if e != uint64(i+1) {
			t.Fatalf("replay out of order: %v", lb.accepted())
		}
	}
	if infos := g.Health(); infos[0].State != BackendHealthy {
		t.Fatalf("health after recovery = %+v", infos[0])
	}
}

// TestErrBackendDownIsTyped checks the skip-path error directly.
func TestErrBackendDownIsTyped(t *testing.T) {
	r := newRig(t)
	r.o.FlushWorkers = 1
	r.o.FlushRetries = 1
	r.o.DownAfter = 1
	p := spawnCounter(t, r)
	g, _ := r.o.Persist("app", p)
	lb := &ledgerBackend{}
	lb.setErr(errors.New("boom"))
	r.o.Attach(g, lb)

	r.k.Run(2)
	r.o.Checkpoint(g, CheckpointOpts{})
	r.o.Drain(g) // epoch 1 fails, backend now down (DownAfter=1)

	// Background epochs queued against the down backend defer with the
	// typed sentinel (probe pacing skips the device entirely).
	r.k.Run(2)
	r.o.Checkpoint(g, CheckpointOpts{})
	r.o.Drain(g)
	g.healthMu.Lock()
	h := g.health[Backend(lb)]
	lastErr := h.lastErr
	g.healthMu.Unlock()
	_ = lastErr // state transitions recorded; the sentinel itself:
	_, deferred, err := r.o.flushBackend(g, lb, g.LastImage(), false)
	if !deferred || !errors.Is(err, ErrBackendDown) {
		t.Fatalf("deferred=%v err=%v, want deferred with ErrBackendDown", deferred, err)
	}
}

// TestMemoryBackendLoadTypedErrors is the satellite bugfix: both Load
// miss paths must wrap ErrNoImage for errors.Is.
func TestMemoryBackendLoadTypedErrors(t *testing.T) {
	r := newRig(t)
	if _, _, err := r.mem.Load(99, 0); !errors.Is(err, ErrNoImage) {
		t.Fatalf("empty-chain Load = %v, want ErrNoImage wrap", err)
	}
	if _, _, err := r.mem.Load(99, 7); !errors.Is(err, ErrNoImage) {
		t.Fatalf("missing-epoch Load = %v, want ErrNoImage wrap", err)
	}
	if _, _, err := r.store.Load(99, 0); !errors.Is(err, ErrNoImage) {
		t.Fatalf("store Load = %v, want ErrNoImage wrap", err)
	}
}

// faultRig is a machine whose primary store backend sits on a seeded
// fault-injecting device, with a clean secondary store.
type faultRig struct {
	clock     *storage.Clock
	k         *kernel.Kernel
	o         *Orchestrator
	fd        *storage.FaultDevice
	primary   *StoreBackend
	secondary *StoreBackend
}

func newFaultRig(seed int64, writeErr float64) *faultRig {
	clock := storage.NewClock()
	k := kernel.NewWith(clock, vm.NewPhysMem(0))
	o := NewOrchestrator(k)
	o.FlushWorkers = 1 // deterministic device-op ordering
	fd := storage.NewFaultDevice(storage.NewMemDevice(storage.ParamsOptaneNVMe, clock), clock,
		storage.FaultConfig{Seed: seed, WriteErr: writeErr, SyncErr: writeErr})
	return &faultRig{
		clock:     clock,
		k:         k,
		o:         o,
		fd:        fd,
		primary:   NewStoreBackend(objstore.Create(fd, clock), k.Mem, clock),
		secondary: NewStoreBackend(objstore.Create(storage.NewMemDevice(storage.ParamsOptaneNVMe, clock), clock), k.Mem, clock),
	}
}

// runFaultWorkload checkpoints a counter group n times and returns the
// group and the live counter value.
func runFaultWorkload(t *testing.T, fr *faultRig, n int) (*Group, uint64) {
	t.Helper()
	p, err := fr.k.Spawn(0, "counter")
	if err != nil {
		t.Fatal(err)
	}
	p.SetProgram(&counter{addr: p.HeapBase()})
	g, err := fr.o.Persist("app", p)
	if err != nil {
		t.Fatal(err)
	}
	fr.o.Attach(g, fr.primary)
	fr.o.Attach(g, fr.secondary)
	for i := 0; i < n; i++ {
		fr.k.Run(2)
		if _, err := fr.o.Checkpoint(g, CheckpointOpts{}); err != nil {
			t.Fatalf("checkpoint %d: %v", i+1, err)
		}
	}
	if err := fr.o.Sync(g); err != nil {
		t.Fatalf("final sync: %v", err)
	}
	return g, counterValue(p)
}

// TestFaultMatrixAcceptance is the ISSUE acceptance criterion: with a
// 1% seeded transient-fault rate on the primary backend of a
// two-backend group, a 200-checkpoint run completes with g.durable at
// the last epoch, the degraded backend fully resynced, and the state
// restored from the faulty primary bit-identical to a fault-free run.
func TestFaultMatrixAcceptance(t *testing.T) {
	const ckpts = 200
	// Fault-free reference run.
	cleanRig := newFaultRig(1, 0)
	_, cleanVal := runFaultWorkload(t, cleanRig, ckpts)

	for _, seed := range []int64{1, 7, 42} {
		fr := newFaultRig(seed, 0.01)
		g, liveVal := runFaultWorkload(t, fr, ckpts)

		if got := g.Epoch(); got != ckpts {
			t.Fatalf("seed %d: epoch = %d, want %d", seed, got, ckpts)
		}
		if got := g.Durable(); got != ckpts {
			t.Fatalf("seed %d: durable = %d, want %d", seed, got, ckpts)
		}
		if fr.fd.InjectedCount() == 0 {
			t.Fatalf("seed %d: no faults injected — the run proved nothing", seed)
		}
		for i, info := range g.Health() {
			if info.State != BackendHealthy || info.Pending != 0 {
				t.Fatalf("seed %d: backend %d not fully resynced: %+v", seed, i, info)
			}
		}
		if liveVal != cleanVal {
			t.Fatalf("seed %d: live counter %d diverged from fault-free %d", seed, liveVal, cleanVal)
		}

		// Zero data divergence on restore — from the faulty primary.
		img, dur, err := fr.primary.Load(g.ID, 0)
		if err != nil {
			t.Fatalf("seed %d: load from primary: %v", seed, err)
		}
		ng, _, err := fr.o.RestoreImage(img, dur, RestoreOpts{})
		if err != nil {
			t.Fatalf("seed %d: restore from primary: %v", seed, err)
		}
		np, err := fr.k.Process(ng.PIDs()[0])
		if err != nil {
			t.Fatal(err)
		}
		if got := counterValue(np); got != cleanVal {
			t.Fatalf("seed %d: restored counter %d, want %d (fault-free run)", seed, got, cleanVal)
		}
	}
}

// TestFaultMatrixSeeds is the fast fault-matrix sweep run by `make
// faultcheck`: several fixed seeds, higher fault rate, fewer epochs.
func TestFaultMatrixSeeds(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 1337} {
		fr := newFaultRig(seed, 0.05)
		g, _ := runFaultWorkload(t, fr, 40)
		if got := g.Durable(); got != 40 {
			t.Fatalf("seed %d: durable = %d, want 40", seed, got)
		}
		for i, info := range g.Health() {
			if info.State != BackendHealthy || info.Pending != 0 {
				t.Fatalf("seed %d: backend %d not resynced: %+v", seed, i, info)
			}
		}
	}
}
