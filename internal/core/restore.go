package core

import (
	"fmt"
	"time"

	"aurora/internal/kernel"
	"aurora/internal/storage"
	"aurora/internal/vm"
)

// RestoreOpts selects the restore strategy.
type RestoreOpts struct {
	// Lazy restores memory by COW-sharing against the image: nothing
	// is copied; faults pull pages in on demand. Eager restores copy
	// every page up front.
	Lazy bool
	// Prefetch eagerly pages in the N hottest pages per object
	// (clock-derived warm-up). Only meaningful with Lazy.
	Prefetch int
	// Name labels the restored group.
	Name string
}

// RestoreImage recreates a persistence group from an image: the
// restored processes resume exactly where the barrier stopped them.
// It returns the new group and the Table 4 latency breakdown.
func (o *Orchestrator) RestoreImage(img *Image, readTime time.Duration, opts RestoreOpts) (*Group, RestoreBreakdown, error) {
	clock := o.K.Clock
	costs := o.K.Costs
	bd := RestoreBreakdown{Lazy: opts.Lazy, ObjectStoreRead: readTime}
	fromStore := bd.ObjectStoreRead > 0
	total := clock.Watch()

	// --- Metadata state: recreate every kernel object ---
	metaSW := clock.Watch()
	meta := img.AllMeta()

	// VM object shells first: mappings and shm reference them.
	objMap := make(map[uint64]*vm.Object) // old vm ID -> new object
	imagePages := int64(0)
	for _, oldID := range img.ObjectIDs() {
		var name string
		var size int64
		for cur := img; cur != nil; cur = cur.Prev {
			if mi, ok := cur.Memory[oldID]; ok {
				name, size = mi.Name, mi.Size
				break
			}
		}
		obj := vm.NewObject(name, size)
		obj.SetTracked(true)
		objMap[oldID] = obj
	}
	lookupObj := func(id uint64) *vm.Object { return objMap[id] }

	// Pass 1: standalone IPC objects.
	type pendingUnix struct {
		sock *kernel.UnixSocket
		refs []uint64
	}
	var pendingUnixes []pendingUnix
	for _, m := range meta {
		var err error
		switch m.Kind {
		case kernel.KindContainer:
			_, err = o.K.RestoreContainer(m.Data)
		case kernel.KindPipe:
			_, err = o.K.RestorePipe(m.Data)
		case kernel.KindSocketPair:
			_, err = o.K.RestoreSocketPair(m.Data)
		case kernel.KindSysVShm:
			_, err = o.K.RestoreShm(m.Data, lookupObj)
		case kernel.KindSysVMsgQueue:
			_, err = o.K.RestoreMsgQueue(m.Data)
		}
		if err != nil {
			return nil, bd, fmt.Errorf("core: restoring %s %d: %w", m.Kind, m.OID, err)
		}
		clock.Advance(costs.ObjRestore)
	}
	// Unix sockets reference socket pairs, so they come second.
	// (Endpoint records, KindSockEnd, are rebuilt by their pairs and
	// need no action here.)
	for _, m := range meta {
		if m.Kind != kernel.KindUnixSocket {
			continue
		}
		sock, refs, err := o.K.RestoreUnixSocket(m.Data)
		if err != nil {
			return nil, bd, fmt.Errorf("core: restoring unix socket %d: %w", m.OID, err)
		}
		pendingUnixes = append(pendingUnixes, pendingUnix{sock, refs})
		clock.Advance(costs.ObjRestore)
	}
	for _, pu := range pendingUnixes {
		if err := o.K.PatchUnixBacklog(pu.sock, pu.refs); err != nil {
			return nil, bd, err
		}
	}

	// Pass 2: processes, threads, descriptor tables.
	type restoredProc struct {
		proc      *kernel.Process
		image     *kernel.ProcImage
		fdTabOID  uint64
		threadOID []uint64
	}
	var procs []restoredProc
	threadByOID := make(map[uint64]*kernel.Thread)
	fdTabByOID := make(map[uint64]*kernel.FDTableImage)
	fdImgByOID := make(map[uint64]*kernel.FDImage)
	for _, m := range meta {
		switch m.Kind {
		case kernel.KindThread:
			t, err := kernel.DecodeThreadImage(m.Data)
			if err != nil {
				return nil, bd, err
			}
			threadByOID[m.OID] = t
		case kernel.KindFDTable:
			ti, err := kernel.DecodeFDTable(m.Data)
			if err != nil {
				return nil, bd, err
			}
			fdTabByOID[m.OID] = ti
		case kernel.KindFileDesc:
			fi, err := kernel.DecodeFileDesc(m.Data)
			if err != nil {
				return nil, bd, err
			}
			fdImgByOID[m.OID] = fi
		}
	}
	for _, m := range meta {
		if m.Kind != kernel.KindProcess {
			continue
		}
		pi, err := kernel.DecodeProcess(m.Data)
		if err != nil {
			return nil, bd, err
		}
		p, err := o.K.RestoreProcess(pi, lookupObj)
		if err != nil {
			return nil, bd, err
		}
		procs = append(procs, restoredProc{proc: p, image: pi, fdTabOID: pi.FDTabOID, threadOID: pi.ThreadOID})
		clock.Advance(costs.ObjRestore)
	}
	// Threads and descriptor tables attach to their processes; shared
	// descriptions restore once and are shared across tables.
	builtDescs := make(map[uint64]*kernel.FileDesc)
	for _, rp := range procs {
		for _, toid := range rp.threadOID {
			if t, ok := threadByOID[toid]; ok {
				o.K.AttachThread(rp.proc, t)
			}
		}
		ti := fdTabByOID[rp.fdTabOID]
		if ti == nil {
			continue
		}
		entries := make(map[int]*kernel.FileDesc)
		for num, descOID := range ti.Entries {
			if fd, ok := builtDescs[descOID]; ok {
				entries[num] = kernel.ShareFileDesc(fd)
				continue
			}
			fi := fdImgByOID[descOID]
			if fi == nil {
				return nil, bd, fmt.Errorf("core: descriptor %d missing from image", descOID)
			}
			fd, err := o.buildFileDesc(fi)
			if err != nil {
				return nil, bd, err
			}
			builtDescs[descOID] = fd
			entries[num] = fd
		}
		o.K.PatchFDTable(rp.proc, entries)
	}
	for _, mi := range img.Memory {
		imagePages += int64(mi.PageCount())
	}
	metaCost := costs.RestoreMetaBase + storage.PerKPage(costs.RestoreMetaPerKPage, imagePages)
	if fromStore {
		// Reading the store image implicitly restored some state.
		metaCost -= costs.ImplicitMetaCredit
	}
	clock.Advance(metaCost)
	bd.MetadataState = metaSW.Elapsed()
	bd.Objects = len(meta)

	// --- Memory state: rebuild the memory hierarchy ---
	memSW := clock.Watch()
	// Collect per-object sls_mctl restore-policy hints from the
	// restored mappings (RestoreEager wins over RestoreLazy when
	// mappings disagree: someone needs the pages resident).
	policies := make(map[*vm.Object]vm.RestorePolicy)
	for _, rp := range procs {
		for _, m := range rp.proc.Space.Mappings() {
			if m.Restore == vm.RestoreDefault {
				continue
			}
			if cur, ok := policies[m.Obj]; !ok || m.Restore == vm.RestoreEager && cur != vm.RestoreEager {
				policies[m.Obj] = m.Restore
			}
		}
	}
	resolvedPages := 0
	shareable := !img.Released()
	for oldID, obj := range objMap {
		effOpts := opts
		switch policies[obj] {
		case vm.RestoreEager:
			effOpts.Lazy = false
		case vm.RestoreLazy:
			effOpts.Lazy = true
		}
		resolvedPages += o.restoreObjectMemory(img, oldID, obj, effOpts, shareable, &bd)
	}
	memCost := costs.RestoreMemBase + storage.PerKPage(costs.RestoreMemPerKPage, int64(resolvedPages))
	if fromStore {
		memCost -= costs.ImplicitMemCredit
	}
	clock.Advance(memCost)
	bd.MemoryState = memSW.Elapsed()
	bd.PagesRestored = resolvedPages

	// --- Resume ---
	name := opts.Name
	if name == "" {
		name = img.Name
	}
	// PID collisions during restore give processes fresh PIDs; patch
	// the parent links so the restored tree keeps its hierarchy.
	pidMap := make(map[int]int, len(procs))
	for _, rp := range procs {
		pidMap[rp.image.PID] = rp.proc.PID
	}
	for _, rp := range procs {
		if np, ok := pidMap[rp.proc.PPID]; ok {
			rp.proc.PPID = np
		}
		if np, ok := pidMap[rp.proc.PGID]; ok {
			rp.proc.PGID = np
		}
		if np, ok := pidMap[rp.proc.SID]; ok {
			rp.proc.SID = np
		}
	}

	o.mu.Lock()
	o.nextID++
	g := &Group{ID: o.nextID, Name: name, pids: make(map[int]bool)}
	// Anchor the group on the image it came from: rollback can reuse
	// it, and the next checkpoint (a fresh full one) starts a new
	// chain from this epoch.
	g.last = img
	g.epoch = img.Epoch
	g.durable = img.Epoch
	o.groups[g.ID] = g
	for _, rp := range procs {
		g.pids[rp.proc.PID] = true
		o.pidGroup[rp.proc.PID] = g.ID
	}
	o.mu.Unlock()

	for _, rp := range procs {
		if err := o.K.ResumeRestored(rp.proc, rp.image.ProgName, rp.image.ProgState); err != nil {
			return nil, bd, err
		}
	}
	bd.Total = total.Elapsed() + bd.ObjectStoreRead
	return g, bd, nil
}

// restoreObjectMemory rebuilds one VM object's pages. Three paths:
//
//   - in-memory image frames are COW-shared with the application (no
//     copies at all: the paper's memory restore);
//   - lazy restores of byte-backed images (loaded from the store or
//     the network) attach a page source, with clock-driven prefetch
//     of the hottest pages; and
//   - eager restores copy everything up front.
func (o *Orchestrator) restoreObjectMemory(img *Image, oldID uint64, obj *vm.Object, opts RestoreOpts, shareable bool, bd *RestoreBreakdown) int {
	// Collect frame-backed pages along the chain (newest wins).
	frames := make(map[int64]*vm.Frame)
	bytesPages := make(map[int64][]byte)
	for cur := img; cur != nil; cur = cur.Prev {
		if mi, ok := cur.Memory[oldID]; ok {
			for idx, f := range mi.Pages {
				if _, seen := frames[idx]; !seen {
					if _, seen := bytesPages[idx]; !seen {
						frames[idx] = f
					}
				}
			}
			for idx, d := range mi.SwapData {
				if _, seen := frames[idx]; !seen {
					if _, seen := bytesPages[idx]; !seen {
						bytesPages[idx] = d
					}
				}
			}
		}
		if cur.Full {
			break
		}
	}
	total := len(frames) + len(bytesPages)

	if shareable && len(frames) > 0 {
		// Zero-copy memory state: share the image's frames under COW.
		for idx, f := range frames {
			obj.InstallSharedPage(o.K.Mem, idx, f)
		}
		bd.Shared += len(frames)
	} else {
		for idx, f := range frames {
			bytesPages[idx] = f.Data
		}
	}

	if len(bytesPages) == 0 {
		return total
	}
	if opts.Lazy {
		obj.SetSource(&imagePageSource{pages: bytesPages})
		if opts.Prefetch > 0 {
			heat := img.ResolveHeat(oldID)
			hot := vm.HottestPages(heat)
			if len(hot) > opts.Prefetch {
				hot = hot[:opts.Prefetch]
			}
			for _, idx := range hot {
				if data := bytesPages[idx]; data != nil {
					f, err := o.K.Mem.Alloc()
					if err != nil {
						return total
					}
					copy(f.Data, data)
					obj.InsertPage(o.K.Mem, idx, f)
					bd.Prefetched++
				}
			}
		}
	} else {
		for idx, data := range bytesPages {
			f, err := o.K.Mem.Alloc()
			if err != nil {
				return total
			}
			copy(f.Data, data)
			obj.InsertPage(o.K.Mem, idx, f)
			o.K.Meter.ChargeCopy(1)
		}
	}
	return total
}

// buildFileDesc resolves one descriptor image, handling Aurora file
// system files (whose inodes live in the file system, not the kernel
// object table).
func (o *Orchestrator) buildFileDesc(fi *kernel.FDImage) (*kernel.FileDesc, error) {
	if fi.FileOID&fsInoBit != 0 && o.FS != nil {
		f, err := o.FS.OpenOrphan(fi.FileOID)
		if err != nil {
			return nil, fmt.Errorf("core: reattaching file inode %d: %w", fi.FileOID, err)
		}
		return o.K.BuildFileDescWith(fi, f), nil
	}
	return o.K.BuildFileDesc(fi)
}

// fsInoBit mirrors slsfs's inode tag bit.
const fsInoBit = uint64(1) << 62

// Restore loads the newest (or a specific) checkpoint from the first
// backend that can serve it and restores the group. In-memory images
// are preferred when present: they restore by COW-sharing frames with
// zero copies, the fastest path.
//
// "Newest" (epoch 0) means the newest *durable* epoch: the pipeline is
// drained first and epochs whose background flush failed are skipped,
// so a restore never lands on a checkpoint with a hole in its history
// (rollback-to-last-durable).
func (o *Orchestrator) Restore(g *Group, epoch uint64, opts RestoreOpts) (*Group, RestoreBreakdown, error) {
	o.Drain(g)
	if epoch == 0 {
		if d := g.Durable(); d > 0 {
			epoch = d
		}
	}
	all := g.Backends()
	backends := make([]Backend, 0, len(all))
	for _, b := range all {
		if b.Ephemeral() {
			backends = append(backends, b)
		}
	}
	for _, b := range all {
		if !b.Ephemeral() {
			backends = append(backends, b)
		}
	}
	var lastErr error = ErrNoBackend
	for _, b := range backends {
		img, readTime, err := b.Load(g.ID, epoch)
		if err != nil {
			lastErr = err
			continue
		}
		ng, bd, err := o.RestoreImage(img, readTime, opts)
		if err != nil {
			return nil, bd, err
		}
		// The restored group inherits the source group's backends.
		for _, back := range backends {
			o.Attach(ng, back)
		}
		return ng, bd, nil
	}
	return nil, RestoreBreakdown{}, lastErr
}

// imagePageSource adapts a resolved image to vm.PageSource for lazy
// restores.
type imagePageSource struct {
	pages map[int64][]byte
}

// FetchPage implements vm.PageSource.
func (s *imagePageSource) FetchPage(idx int64) ([]byte, error) { return s.pages[idx], nil }

// HasPage implements vm.PageSource.
func (s *imagePageSource) HasPage(idx int64) bool {
	_, ok := s.pages[idx]
	return ok
}

// Pages implements vm.PageSource.
func (s *imagePageSource) Pages() []int64 {
	out := make([]int64, 0, len(s.pages))
	for idx := range s.pages {
		out = append(out, idx)
	}
	return out
}
