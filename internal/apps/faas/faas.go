// Package faas implements the paper's serverless use case on Aurora:
// function warm starts by restore, scale-out by repeated restore, and
// high function density through the object store's deduplication.
//
// A function runtime is built once: a container whose process loads a
// simulated language runtime (pages of deterministic "library"
// content) and initializes — the expensive part of a cold start. The
// runtime container is checkpointed; every deployed function is then a
// small delta over that image (its own code and arguments), so the
// store holds the runtime pages once no matter how many functions are
// deployed. Invocation restores the function's checkpoint: the
// paper's sub-millisecond warm start.
package faas

import (
	"encoding/binary"
	"errors"
	"fmt"

	"aurora/internal/core"
	"aurora/internal/interp"
	"aurora/internal/kernel"
	"aurora/internal/vm"
)

// Errors.
var (
	ErrNoFunction = errors.New("faas: function not deployed")
	ErrNotReady   = errors.New("faas: function did not produce a result")
)

// Layout addresses inside a function instance.
const (
	// argAddr holds the invocation argument (u64).
	argAddr = vm.Addr(0x2000_0000)
	// resultAddr holds the result; resultFlag is set when done.
	resultAddr = vm.Addr(0x2000_0008)
	flagAddr   = vm.Addr(0x2000_0010)
	// runtimeBase maps the simulated language runtime.
	runtimeBase = vm.Addr(0x3000_0000)
)

// Runtime owns the base image and the deployed functions.
type Runtime struct {
	O     *core.Orchestrator
	Store *core.StoreBackend
	Mem   *core.MemoryBackend
	// RuntimePages sizes the simulated language runtime: pages of
	// deterministic content shared by every function.
	RuntimePages int
	// InitLoops is the cold-start initialization work (interp loop
	// iterations touching the runtime).
	InitLoops int

	baseGroup *core.Group
	functions map[string]*Function
}

// Function is one deployed function.
type Function struct {
	Name  string
	Group *core.Group
	// Code size in bytes of the function-specific delta.
	DeltaBytes int
}

// NewRuntime builds the runtime manager.
func NewRuntime(o *core.Orchestrator, store *core.StoreBackend, mem *core.MemoryBackend) *Runtime {
	return &Runtime{
		O:            o,
		Store:        store,
		Mem:          mem,
		RuntimePages: 160, // ~650 KB, sized to the paper's serverless image
		InitLoops:    5000,
		functions:    make(map[string]*Function),
	}
}

// functionProgram assembles the hello-world function body:
//
//	init:  loop InitLoops times reading runtime pages (cold start)
//	ready: spin until argAddr changes from 0 (warm instances park here)
//	body:  result = arg*2 + runtime[0]; flag = 1; jump ready
func (rt *Runtime) functionProgram() []byte {
	var a interp.Asm
	const textBase = uint32(0x0040_0000)

	// --- init: touch runtime pages to fault them in ---
	runtimeEnd := uint32(runtimeBase) + uint32(rt.RuntimePages)*uint32(vm.PageSize)
	a.Emit(interp.OpLi, 1, 0, uint32(runtimeBase)) // r1 = runtime cursor
	a.Emit(interp.OpLi, 2, 0, 0)                   // r2 = i
	a.Emit(interp.OpLi, 3, 0, uint32(rt.InitLoops))
	a.Emit(interp.OpLi, 15, 0, runtimeEnd) // r15 = wrap bound
	initLoop := a.Len()
	a.Emit(interp.OpLd8, 4, 1, 0)         // touch runtime
	a.Emit(interp.OpAddi, 1, 1, 64)       // stride through the pages
	blt := a.Emit(interp.OpBlt, 1, 15, 0) // in range: skip the reset
	a.Emit(interp.OpLi, 1, 0, uint32(runtimeBase))
	a.Patch(blt, textBase+uint32(a.Len()))
	a.Emit(interp.OpAddi, 2, 2, 1)
	bne := a.Emit(interp.OpBne, 2, 3, 0)
	a.Patch(bne, textBase+uint32(initLoop))

	// --- ready: park until an argument arrives ---
	ready := a.Len()
	a.Emit(interp.OpLi, 5, 0, uint32(argAddr))
	a.Emit(interp.OpLd, 6, 5, 0) // r6 = arg
	a.Emit(interp.OpLi, 7, 0, 0)
	spin := a.Emit(interp.OpBeq, 6, 7, 0) // if arg == 0 goto ready
	a.Patch(spin, textBase+uint32(ready))
	a.Emit(interp.OpSys, interp.SysYield, 0, 0)

	// --- body ---
	a.Emit(interp.OpAdd, 8, 6, 6) // result = arg*2
	a.Emit(interp.OpLi, 9, 0, uint32(runtimeBase))
	a.Emit(interp.OpLd8, 10, 9, 0)
	a.Emit(interp.OpAdd, 8, 8, 10) // + runtime[0]
	a.Emit(interp.OpLi, 11, 0, uint32(resultAddr))
	a.Emit(interp.OpSt, 8, 11, 0)
	a.Emit(interp.OpLi, 12, 0, 1)
	a.Emit(interp.OpLi, 13, 0, uint32(flagAddr))
	a.Emit(interp.OpSt, 12, 13, 0)
	// Clear the argument and park again.
	a.Emit(interp.OpLi, 14, 0, 0)
	a.Emit(interp.OpSt, 14, 5, 0)
	jmp := a.Emit(interp.OpJmp, 0, 0, 0)
	a.Patch(jmp, textBase+uint32(ready))
	return a.Code()
}

// boot spawns and initializes one runtime instance (a cold start),
// returning the process once it parks at ready.
func (rt *Runtime) boot(container int) (*kernel.Process, error) {
	k := rt.O.K
	p, err := k.Spawn(container, "faas-runtime")
	if err != nil {
		return nil, err
	}
	// Argument/result page.
	if _, err := p.Space.Map(argAddr&^vm.Addr(vm.PageMask), vm.PageSize,
		vm.ProtRead|vm.ProtWrite, vm.NewObject("mailbox", vm.PageSize), 0, false, "mailbox"); err != nil {
		return nil, err
	}
	// Simulated language runtime: deterministic contents dedup across
	// every instance ever checkpointed.
	size := int64(rt.RuntimePages) * vm.PageSize
	if _, err := p.Space.Map(runtimeBase, size, vm.ProtRead|vm.ProtWrite,
		vm.NewObject("runtime", size), 0, false, "runtime"); err != nil {
		return nil, err
	}
	content := make([]byte, size)
	for i := range content {
		content[i] = byte(37 + i%251)
	}
	if err := p.WriteMem(runtimeBase, content); err != nil {
		return nil, err
	}
	if _, err := interp.Load(k, p, rt.functionProgram()); err != nil {
		return nil, err
	}
	// Run the init loop to the parking point (the expensive cold
	// start). The yield after the body never fires during init; the
	// park spin keeps the process runnable.
	// Parked sibling instances spin and share the scheduler, so the
	// budget scales with the whole-system quantum demand.
	for i := 0; i < rt.InitLoops/16+1024; i++ {
		if _, err := k.Run(64); err != nil {
			return nil, err
		}
		if rt.parked(p) {
			break
		}
	}
	if !rt.parked(p) {
		return nil, fmt.Errorf("faas: runtime did not reach ready state")
	}
	return p, nil
}

// parked reports whether the instance is spinning at ready (init done:
// the loop counter register equals the loop bound).
func (rt *Runtime) parked(p *kernel.Process) bool {
	t := p.Threads[0]
	return t.Regs.GPR[2] == uint64(rt.InitLoops) && p.State() == kernel.ProcRunning
}

// BuildBase cold-boots the runtime container and checkpoints it: the
// image every function is a delta over.
func (rt *Runtime) BuildBase() (*core.Group, error) {
	c := rt.O.K.NewContainer("faas-runtime")
	p, err := rt.boot(c.ID)
	if err != nil {
		return nil, err
	}
	g, err := rt.O.PersistContainer("faas-base", c.ID)
	if err != nil {
		return nil, err
	}
	if rt.Store != nil {
		rt.O.Attach(g, rt.Store)
	}
	if rt.Mem != nil {
		rt.O.Attach(g, rt.Mem)
	}
	if _, err := rt.O.Checkpoint(g, core.CheckpointOpts{Name: "faas-base"}); err != nil {
		return nil, err
	}
	// Deployment is a durability point: later deploys restore from this
	// image, so wait out the background flush.
	if err := rt.O.Sync(g); err != nil {
		return nil, err
	}
	rt.baseGroup = g
	_ = p
	return g, nil
}

// Deploy creates a function: a restored runtime instance patched with
// the function's delta (its code/configuration bytes), checkpointed
// into its own group. Storage cost beyond the shared runtime is just
// the delta.
func (rt *Runtime) Deploy(name string, delta []byte) (*Function, error) {
	if rt.baseGroup == nil {
		if _, err := rt.BuildBase(); err != nil {
			return nil, err
		}
	}
	ng, _, err := rt.O.Restore(rt.baseGroup, 0, core.RestoreOpts{Lazy: true, Name: "fn-" + name})
	if err != nil {
		return nil, err
	}
	p, err := rt.O.K.Process(ng.PIDs()[0])
	if err != nil {
		return nil, err
	}
	// The function's own state: a small configuration blob placed in
	// the mailbox page (beyond the flag words).
	if len(delta) > 0 {
		if err := p.WriteMem(flagAddr+8, delta); err != nil {
			return nil, err
		}
	}
	if _, err := rt.O.Checkpoint(ng, core.CheckpointOpts{Name: "fn-" + name}); err != nil {
		return nil, err
	}
	if err := rt.O.Sync(ng); err != nil {
		return nil, err
	}
	fn := &Function{Name: name, Group: ng, DeltaBytes: len(delta)}
	rt.functions[name] = fn
	return fn, nil
}

// Function returns a deployed function.
func (rt *Runtime) Function(name string) (*Function, error) {
	fn, ok := rt.functions[name]
	if !ok {
		return nil, ErrNoFunction
	}
	return fn, nil
}

// Invoke warm-starts the function from its checkpoint, passes arg, and
// runs it to completion. It returns the result and the restore
// breakdown (the warm-start latency of Table 4).
func (rt *Runtime) Invoke(name string, arg uint64, opts core.RestoreOpts) (uint64, core.RestoreBreakdown, error) {
	fn, ok := rt.functions[name]
	if !ok {
		return 0, core.RestoreBreakdown{}, ErrNoFunction
	}
	opts.Name = "invoke-" + name
	ng, bd, err := rt.O.Restore(fn.Group, 0, opts)
	if err != nil {
		return 0, bd, err
	}
	p, err := rt.O.K.Process(ng.PIDs()[0])
	if err != nil {
		return 0, bd, err
	}
	result, err := rt.run(p, arg)
	if err != nil {
		return 0, bd, err
	}
	// Scale-in: the instance exits after one invocation.
	rt.O.K.Exit(p, 0)
	rt.O.K.Reap(p)
	rt.O.Unpersist(ng)
	return result, bd, nil
}

// ColdStart boots a fresh instance from scratch and runs one
// invocation — the baseline the paper's warm start is compared to.
func (rt *Runtime) ColdStart(arg uint64) (uint64, error) {
	c := rt.O.K.NewContainer("cold")
	p, err := rt.boot(c.ID)
	if err != nil {
		return 0, err
	}
	result, err := rt.run(p, arg)
	if err != nil {
		return 0, err
	}
	rt.O.K.Exit(p, 0)
	rt.O.K.Reap(p)
	return result, nil
}

// run delivers an argument and waits for the flag.
func (rt *Runtime) run(p *kernel.Process, arg uint64) (uint64, error) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], arg)
	if err := p.WriteMem(argAddr, b[:]); err != nil {
		return 0, err
	}
	for i := 0; i < 10000; i++ {
		if _, err := rt.O.K.Run(16); err != nil {
			return 0, err
		}
		if err := p.ReadMem(flagAddr, b[:]); err != nil {
			return 0, err
		}
		if binary.LittleEndian.Uint64(b[:]) == 1 {
			// Reset the flag for the next invocation.
			var zero [8]byte
			p.WriteMem(flagAddr, zero[:])
			if err := p.ReadMem(resultAddr, b[:]); err != nil {
				return 0, err
			}
			return binary.LittleEndian.Uint64(b[:]), nil
		}
	}
	return 0, ErrNotReady
}

// RunInstance delivers an argument to an already-running instance and
// waits for its result (used by scale-out tests that keep instances
// alive across invocations).
func (rt *Runtime) RunInstance(p *kernel.Process, arg uint64) (uint64, error) {
	return rt.run(p, arg)
}

// Expected computes the function's expected output for verification.
func (rt *Runtime) Expected(arg uint64) uint64 {
	return arg*2 + uint64(37) // runtime[0] = 37
}

// Functions lists deployed function names.
func (rt *Runtime) Functions() []string {
	out := make([]string, 0, len(rt.functions))
	for n := range rt.functions {
		out = append(out, n)
	}
	return out
}
