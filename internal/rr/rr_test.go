package rr

import (
	"fmt"
	"testing"

	"aurora/internal/core"
	"aurora/internal/kernel"
	"aurora/internal/storage"
	"aurora/internal/vm"
)

func fixture(t *testing.T) (*kernel.Kernel, *core.API, *kernel.Process, *core.Group) {
	t.Helper()
	clock := storage.NewClock()
	k := kernel.NewWith(clock, vm.NewPhysMem(0))
	o := core.NewOrchestrator(k)
	api := core.NewAPI(o)
	p, _ := k.Spawn(0, "app")
	p.SetProgram(&kernel.FuncProgram{Name: "idle", Fn: func(*kernel.Kernel, *kernel.Process, *kernel.Thread) error { return nil }})
	kernel.RegisterProgram("idle", func(*kernel.Kernel, *kernel.Process, []byte) (kernel.Program, error) {
		return &kernel.FuncProgram{Name: "idle", Fn: func(*kernel.Kernel, *kernel.Process, *kernel.Thread) error { return nil }}, nil
	})
	g, _ := o.Persist("app", p)
	o.Attach(g, core.NewMemoryBackend(k.Mem, 8))
	return k, api, p, g
}

func TestRecordAndTailLog(t *testing.T) {
	_, api, _, g := fixture(t)
	r := NewRecorder(api, g)
	r.Record(EvSocketData, []byte("req1"))
	r.Record(EvClock, []byte{1, 2})
	if r.LogLen() != 2 {
		t.Fatalf("log len = %d", r.LogLen())
	}
	tail := r.TailLog()
	if tail[0].Kind != EvSocketData || string(tail[0].Payload) != "req1" {
		t.Fatalf("tail[0] = %+v", tail[0])
	}
	if tail[1].Seq != 2 {
		t.Fatalf("seq = %d", tail[1].Seq)
	}
}

func TestCheckpointBoundsLog(t *testing.T) {
	_, api, p, g := fixture(t)
	r := NewRecorder(api, g)
	for i := 0; i < 100; i++ {
		r.Record(EvSocketData, []byte(fmt.Sprintf("input-%d", i)))
	}
	if _, err := r.Checkpoint(p); err != nil {
		t.Fatal(err)
	}
	if r.LogLen() != 0 {
		t.Fatalf("log not truncated by checkpoint: %d", r.LogLen())
	}
	// Only post-checkpoint inputs are retained.
	r.Record(EvSocketData, []byte("after"))
	if r.LogLen() != 1 || r.LogBytes() <= 0 {
		t.Fatalf("post-checkpoint log wrong: %d entries", r.LogLen())
	}
}

func TestEncodeDecodeLog(t *testing.T) {
	_, api, _, g := fixture(t)
	r := NewRecorder(api, g)
	r.Record(EvSocketData, []byte("abc"))
	r.Record(EvRandom, []byte{0x42})
	events, err := DecodeLog(r.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || events[1].Kind != EvRandom || events[1].Payload[0] != 0x42 {
		t.Fatalf("decoded = %+v", events)
	}
}

func TestReplayerOrderAndExhaustion(t *testing.T) {
	rp := NewReplayer([]Event{
		{Seq: 1, Kind: EvSocketData, Payload: []byte("a")},
		{Seq: 2, Kind: EvClock, Payload: []byte("t")},
		{Seq: 3, Kind: EvSocketData, Payload: []byte("b")},
	})
	d1, _ := rp.Next(EvSocketData)
	d2, _ := rp.Next(EvSocketData)
	if string(d1) != "a" || string(d2) != "b" {
		t.Fatalf("replay order: %q %q", d1, d2)
	}
	if rp.Remaining() != 0 {
		t.Fatalf("remaining = %d", rp.Remaining())
	}
	if _, err := rp.Next(EvSocketData); err != ErrReplayExhausted {
		t.Fatalf("err = %v", err)
	}
}

// TestDeterministicReplay runs the same "application logic" live and
// under replay and requires identical results — the core record/replay
// property.
func TestDeterministicReplay(t *testing.T) {
	_, api, _, g := fixture(t)
	rec := NewRecorder(api, g)

	// Application logic: consume three inputs, fold them into a state.
	run := func(src InputSource) (string, error) {
		state := ""
		inputs := []string{"x", "y", "z"} // the live world
		for i := 0; i < 3; i++ {
			i := i
			data, err := src.Input(EvSocketData, func() []byte { return []byte(inputs[i]) })
			if err != nil {
				return "", err
			}
			state += string(data)
		}
		return state, nil
	}

	liveResult, err := run(&LiveSource{R: rec})
	if err != nil {
		t.Fatal(err)
	}
	replayResult, err := run(&ReplaySource{R: NewReplayer(rec.TailLog())})
	if err != nil {
		t.Fatal(err)
	}
	if liveResult != replayResult {
		t.Fatalf("live %q != replay %q", liveResult, replayResult)
	}
}

// TestCrashReplayWorkflow exercises the paper's workflow: periodic
// checkpoints bound the log; after a crash the app restores from the
// last checkpoint and replays the tail to reach the pre-crash state.
func TestCrashReplayWorkflow(t *testing.T) {
	k, api, p, g := fixture(t)
	rec := NewRecorder(api, g)

	// The app accumulates inputs into simulated memory.
	apply := func(proc *kernel.Process, data []byte) {
		var lenb [2]byte
		proc.ReadMem(proc.HeapBase(), lenb[:])
		n := int(lenb[0]) | int(lenb[1])<<8
		proc.WriteMem(proc.HeapBase()+2+vm.Addr(n), data)
		n += len(data)
		lenb[0], lenb[1] = byte(n), byte(n>>8)
		proc.WriteMem(proc.HeapBase(), lenb[:])
	}
	read := func(proc *kernel.Process) string {
		var lenb [2]byte
		proc.ReadMem(proc.HeapBase(), lenb[:])
		n := int(lenb[0]) | int(lenb[1])<<8
		buf := make([]byte, n)
		proc.ReadMem(proc.HeapBase()+2, buf)
		return string(buf)
	}

	live := &LiveSource{R: rec}
	in1, _ := live.Input(EvSocketData, func() []byte { return []byte("aa") })
	apply(p, in1)
	if _, err := rec.Checkpoint(p); err != nil {
		t.Fatal(err)
	}
	in2, _ := live.Input(EvSocketData, func() []byte { return []byte("bb") })
	apply(p, in2)
	in3, _ := live.Input(EvSocketData, func() []byte { return []byte("cc") })
	apply(p, in3)
	preCrash := read(p)

	// Crash: restore the checkpoint, then replay the bounded log.
	ng, _, err := api.Restore(g, 0, core.RestoreOpts{Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	np, _ := k.Process(ng.PIDs()[0])
	if got := read(np); got != "aa" {
		t.Fatalf("restored state = %q, want checkpoint state", got)
	}
	replay := &ReplaySource{R: NewReplayer(rec.TailLog())}
	for {
		data, err := replay.Input(EvSocketData, nil)
		if err != nil {
			break
		}
		apply(np, data)
	}
	if got := read(np); got != preCrash {
		t.Fatalf("replayed state %q != pre-crash %q", got, preCrash)
	}
}
