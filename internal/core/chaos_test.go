package core_test

// The whole-system chaos harness: storage faults, link faults, process
// crashes with supervisor restarts, a transient partition with heal,
// one forced replica promotion, and one stale-primary return — all
// composed under one seeded schedule, with the core invariants
// (durable monotonicity, bit-identical restores, released output never
// lost, exactly one primary per lineage) re-checked after every event.
// The engine lives in internal/bench (ChaosRun); this test binds it to
// the seeds the repo's `make chaoscheck` pins.

import (
	"testing"

	"aurora/internal/bench"
)

func chaosConfig(seed int64) bench.ChaosConfig {
	return bench.ChaosConfig{
		Seed:            seed,
		Checkpoints:     24,
		StepsPerEpoch:   3,
		LinkDrop:        0.02,
		LinkDup:         0.05,
		LinkReorder:     0.05,
		LinkCorrupt:     0.01,
		StoreWriteErr:   0.02,
		StoreReadErr:    0.01,
		CrashEvery:      8,
		PartitionAt:     10,
		PartitionLen:    3,
		DivergentEpochs: 4,
		PostEpochs:      6,
	}
}

func runChaos(t *testing.T, seed int64) {
	t.Helper()
	rep, err := bench.ChaosRun(chaosConfig(seed))
	if err != nil {
		t.Fatalf("chaos seed %d: %v", seed, err)
	}
	// The schedule must actually have exercised every event class.
	if rep.Crashes < 1 || rep.Restores < 1 {
		t.Fatalf("seed %d: crashes=%d restores=%d, want >= 1 each", seed, rep.Crashes, rep.Restores)
	}
	if rep.Heals != 1 {
		t.Fatalf("seed %d: heals=%d, want 1 transient partition healed", seed, rep.Heals)
	}
	if rep.Partitions < 2 {
		t.Fatalf("seed %d: partitions=%d, want >= 2 (transient + permanent)", seed, rep.Partitions)
	}
	if rep.LinkDropped == 0 {
		t.Fatalf("seed %d: no frames dropped on the link", seed)
	}
	if rep.PromoteGen < 2 {
		t.Fatalf("seed %d: promotion generation %d, want >= 2", seed, rep.PromoteGen)
	}
	if rep.Floor == 0 || rep.Backfilled == 0 {
		t.Fatalf("seed %d: floor=%d backfilled=%d, want nonzero", seed, rep.Floor, rep.Backfilled)
	}
	if rep.PromoteTTR <= 0 {
		t.Fatalf("seed %d: promotion TTR %v not modeled", seed, rep.PromoteTTR)
	}
	if rep.CatchUp <= 0 {
		t.Fatalf("seed %d: catch-up time %v not modeled", seed, rep.CatchUp)
	}
	if rep.StaleRejected < 2 {
		t.Fatalf("seed %d: staleRejected=%d, want the fenced flush and the refused barrier", seed, rep.StaleRejected)
	}
	if rep.Quarantined < 4 {
		t.Fatalf("seed %d: quarantined=%d, want >= 4 divergent epochs", seed, rep.Quarantined)
	}
	if rep.Released <= rep.Floor {
		t.Fatalf("seed %d: released watermark %d did not advance past the promotion floor %d", seed, rep.Released, rep.Floor)
	}
	t.Logf("seed %d: %d checkpoints, %d crashes, %d partitions, floor %d, gen %d, catch-up %v, promote TTR %v",
		seed, rep.Checkpoints, rep.Crashes, rep.Partitions, rep.Floor, rep.PromoteGen, rep.CatchUp, rep.PromoteTTR)
}

func TestChaosSeed1(t *testing.T)  { runChaos(t, 1) }
func TestChaosSeed7(t *testing.T)  { runChaos(t, 7) }
func TestChaosSeed42(t *testing.T) { runChaos(t, 42) }
