// Package redis implements a miniature Redis: an in-memory key-value
// store whose entire dataset lives in *simulated* process memory, a
// RESP-style text protocol served over simulated sockets, and three
// interchangeable persistence engines:
//
//   - AOF: an append-only command file with periodic fsync, the
//     classic write-ahead approach (baseline);
//   - fork snapshot: BGSAVE-style forking with the child serializing
//     the table to a dump file (baseline); and
//   - Aurora: the paper's port — sls_ntflush for the operation log,
//     sls_checkpoint for snapshots, sls_barrier for durability
//     waits. No persistence code touches the data structures.
//
// Because the hash table is laid out in simulated pages, Aurora's
// checkpointing covers it with zero application cooperation: this is
// the paper's Redis workload.
package redis

import (
	"encoding/binary"
	"errors"
	"hash/fnv"

	"aurora/internal/kernel"
	"aurora/internal/vm"
)

// Store errors.
var (
	ErrArenaFull = errors.New("redis: arena exhausted")
	ErrNotFound  = errors.New("redis: key not found")
	ErrTooLarge  = errors.New("redis: key or value too large")
)

// Table layout constants. All offsets are relative to the table base
// address in the owning process's address space.
const (
	magic      = 0x41555252 // "AURR"
	hdrMagic   = 0
	hdrBuckets = 8
	hdrCount   = 16
	hdrAlloc   = 24
	hdrArena   = 32
	headerSize = 64

	maxKey = 1 << 16
	maxVal = 1 << 24
)

// Store is the driver handle to a hash table living in a process's
// simulated memory. The driver holds no table state: everything is in
// the pages, so checkpoints capture it and restores revive it with a
// fresh Store handle at the same base address.
type Store struct {
	P    *kernel.Process
	Base vm.Addr
}

// Init lays out an empty table at base: nbuckets chain heads plus an
// arena of arenaBytes for entries. The region must already be mapped
// (heap via Sbrk, or an anonymous mapping).
func Init(p *kernel.Process, base vm.Addr, nbuckets int, arenaBytes int64) (*Store, error) {
	s := &Store{P: p, Base: base}
	if err := s.w64(hdrMagic, magic); err != nil {
		return nil, err
	}
	if err := s.w64(hdrBuckets, uint64(nbuckets)); err != nil {
		return nil, err
	}
	if err := s.w64(hdrCount, 0); err != nil {
		return nil, err
	}
	alloc := int64(headerSize) + int64(nbuckets)*8
	if err := s.w64(hdrAlloc, uint64(alloc)); err != nil {
		return nil, err
	}
	if err := s.w64(hdrArena, uint64(alloc+arenaBytes)); err != nil {
		return nil, err
	}
	// Zero the bucket array (fresh mappings read zero anyway, but an
	// Init over a reused region must clear it).
	zero := make([]byte, nbuckets*8)
	if err := p.WriteMem(base+headerSize, zero); err != nil {
		return nil, err
	}
	return s, nil
}

// Attach reopens an existing table at base (after a restore).
func Attach(p *kernel.Process, base vm.Addr) (*Store, error) {
	s := &Store{P: p, Base: base}
	m, err := s.r64(hdrMagic)
	if err != nil {
		return nil, err
	}
	if m != magic {
		return nil, errors.New("redis: no table at base address")
	}
	return s, nil
}

// ArenaSize returns the bytes needed for an Init with the given
// geometry, for sizing Sbrk calls.
func ArenaSize(nbuckets int, arenaBytes int64) int64 {
	return headerSize + int64(nbuckets)*8 + arenaBytes
}

func (s *Store) r64(off int64) (uint64, error) {
	var b [8]byte
	if err := s.P.ReadMem(s.Base+vm.Addr(off), b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

func (s *Store) w64(off int64, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return s.P.WriteMem(s.Base+vm.Addr(off), b[:])
}

func (s *Store) r32(off int64) (uint32, error) {
	var b [4]byte
	if err := s.P.ReadMem(s.Base+vm.Addr(off), b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

// bucketOff returns the table offset of a key's bucket head pointer.
func (s *Store) bucketOff(key []byte) (int64, error) {
	nb, err := s.r64(hdrBuckets)
	if err != nil {
		return 0, err
	}
	h := fnv.New64a()
	h.Write(key)
	return int64(headerSize + (h.Sum64()%nb)*8), nil
}

// entry header: [next u64][klen u32][vlen u32][key][value]
const entryHdr = 16

// findEntry walks a chain for key, returning (entryOff, prevLinkOff).
func (s *Store) findEntry(key []byte) (int64, int64, error) {
	bo, err := s.bucketOff(key)
	if err != nil {
		return 0, 0, err
	}
	linkOff := bo
	cur, err := s.r64(bo)
	if err != nil {
		return 0, 0, err
	}
	kbuf := make([]byte, len(key))
	for cur != 0 {
		klen, err := s.r32(int64(cur) + 8)
		if err != nil {
			return 0, 0, err
		}
		if int(klen) == len(key) {
			if err := s.P.ReadMem(s.Base+vm.Addr(cur)+entryHdr, kbuf); err != nil {
				return 0, 0, err
			}
			if string(kbuf) == string(key) {
				return int64(cur), linkOff, nil
			}
		}
		linkOff = int64(cur) // next pointer is at entry offset +0
		next, err := s.r64(int64(cur))
		if err != nil {
			return 0, 0, err
		}
		cur = next
	}
	return 0, linkOff, nil
}

// Set inserts or updates a key. Same-size updates overwrite in place;
// others allocate a fresh entry at the bucket head.
func (s *Store) Set(key, val []byte) error {
	if len(key) == 0 || len(key) > maxKey || len(val) > maxVal {
		return ErrTooLarge
	}
	eo, _, err := s.findEntry(key)
	if err != nil {
		return err
	}
	if eo != 0 {
		vlen, err := s.r32(eo + 12)
		if err != nil {
			return err
		}
		if int(vlen) == len(val) {
			return s.P.WriteMem(s.Base+vm.Addr(eo)+entryHdr+vm.Addr(len(key)), val)
		}
		// Size changed: remove then reinsert.
		if err := s.Del(key); err != nil {
			return err
		}
	}

	need := int64(entryHdr + len(key) + len(val))
	need = (need + 7) &^ 7
	alloc, err := s.r64(hdrAlloc)
	if err != nil {
		return err
	}
	arenaEnd, err := s.r64(hdrArena)
	if err != nil {
		return err
	}
	if alloc+uint64(need) > arenaEnd {
		return ErrArenaFull
	}
	if err := s.w64(hdrAlloc, alloc+uint64(need)); err != nil {
		return err
	}

	bo, err := s.bucketOff(key)
	if err != nil {
		return err
	}
	head, err := s.r64(bo)
	if err != nil {
		return err
	}
	// Write the entry: next, klen, vlen, key, val.
	hdr := make([]byte, entryHdr)
	binary.LittleEndian.PutUint64(hdr[0:], head)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(key)))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(len(val)))
	ea := s.Base + vm.Addr(alloc)
	if err := s.P.WriteMem(ea, hdr); err != nil {
		return err
	}
	if err := s.P.WriteMem(ea+entryHdr, key); err != nil {
		return err
	}
	if err := s.P.WriteMem(ea+entryHdr+vm.Addr(len(key)), val); err != nil {
		return err
	}
	if err := s.w64(bo, alloc); err != nil {
		return err
	}
	count, err := s.r64(hdrCount)
	if err != nil {
		return err
	}
	return s.w64(hdrCount, count+1)
}

// Get fetches a key's value.
func (s *Store) Get(key []byte) ([]byte, error) {
	eo, _, err := s.findEntry(key)
	if err != nil {
		return nil, err
	}
	if eo == 0 {
		return nil, ErrNotFound
	}
	vlen, err := s.r32(eo + 12)
	if err != nil {
		return nil, err
	}
	val := make([]byte, vlen)
	if err := s.P.ReadMem(s.Base+vm.Addr(eo)+entryHdr+vm.Addr(len(key)), val); err != nil {
		return nil, err
	}
	return val, nil
}

// Del removes a key, reporting whether it existed. Entry space is not
// reclaimed (like Redis, memory is returned only on restart/defrag).
func (s *Store) Del(key []byte) error {
	eo, linkOff, err := s.findEntry(key)
	if err != nil {
		return err
	}
	if eo == 0 {
		return ErrNotFound
	}
	next, err := s.r64(eo)
	if err != nil {
		return err
	}
	if err := s.w64(linkOff, next); err != nil {
		return err
	}
	count, err := s.r64(hdrCount)
	if err != nil {
		return err
	}
	return s.w64(hdrCount, count-1)
}

// Count returns the live key count.
func (s *Store) Count() (uint64, error) { return s.r64(hdrCount) }

// UsedBytes returns arena bytes consumed.
func (s *Store) UsedBytes() (int64, error) {
	a, err := s.r64(hdrAlloc)
	return int64(a), err
}

// ForEach visits every live entry (bucket order). The callback must
// not mutate the table.
func (s *Store) ForEach(fn func(key, val []byte) error) error {
	nb, err := s.r64(hdrBuckets)
	if err != nil {
		return err
	}
	for b := uint64(0); b < nb; b++ {
		cur, err := s.r64(int64(headerSize + b*8))
		if err != nil {
			return err
		}
		for cur != 0 {
			klen, err := s.r32(int64(cur) + 8)
			if err != nil {
				return err
			}
			vlen, err := s.r32(int64(cur) + 12)
			if err != nil {
				return err
			}
			kv := make([]byte, int(klen)+int(vlen))
			if err := s.P.ReadMem(s.Base+vm.Addr(cur)+entryHdr, kv); err != nil {
				return err
			}
			if err := fn(kv[:klen], kv[klen:]); err != nil {
				return err
			}
			cur, err = s.r64(int64(cur))
			if err != nil {
				return err
			}
		}
	}
	return nil
}
