package objstore

import (
	"bytes"
	"math/rand"
	"testing"
)

// Property test for cross-group content-hash dedup under GC: several
// groups continuously checkpoint images drawn from a small shared
// content pool (so most blocks are shared across groups), while a
// random interleaving of DropEpoch calls reclaims each group's
// history. The invariant: a block referenced by any live epoch of any
// group is never dropped — every live view must read back
// bit-identical after every operation, and the reachability audit
// must hold.
//
// This is the regression net for the fleet's FaaS-density story: a
// thousand clones share one image's blocks, and one clone's GC must
// never eat a block the others still resolve.

// dedupModelEpoch is the expected merged view of one (group, epoch):
// page index -> fill byte.
type dedupModelEpoch struct {
	epoch uint64
	view  map[int64]byte
}

func TestDedupCrossGroupGCInterleaving(t *testing.T) {
	const (
		groups = 4
		rounds = 120
		oidOf  = 1000 // group i checkpoints object oidOf+i
	)
	for _, seed := range []int64{1, 7, 42} {
		rng := rand.New(rand.NewSource(seed))
		s := testStore(t)

		// Shared content pool: 6 fills means heavy cross-group block
		// sharing, the worst case for refcounted GC.
		fills := []byte{0x11, 0x22, 0x33, 0x44, 0x55, 0x66}

		model := make([][]dedupModelEpoch, groups)
		next := make([]uint64, groups) // next epoch per group
		for g := range next {
			next[g] = 1
		}

		put := func(g int) {
			epoch := next[g]
			next[g]++
			full := epoch == 1
			// Dirty 1-4 pages out of an 8-page object with pool fills.
			dirty := make(map[int64][]byte)
			want := make(map[int64]byte)
			for n := 1 + rng.Intn(4); n > 0; n-- {
				pg := int64(rng.Intn(8))
				fill := fills[rng.Intn(len(fills))]
				dirty[pg] = page(fill)
				want[pg] = fill
			}
			oid := uint64(oidOf + g)
			if _, err := s.PutRecord(uint64(g+1), oid, epoch, 1, full, []byte{byte(g), byte(epoch)}, dirty, nil); err != nil {
				t.Fatalf("seed %d: put g%d e%d: %v", seed, g, epoch, err)
			}
			m := &Manifest{Group: uint64(g + 1), Epoch: epoch, Records: []RecordKey{{uint64(g + 1), oid, epoch}}, Roots: []uint64{oid}}
			if epoch > 1 {
				m.Prev = epoch - 1
			}
			s.PutManifest(m)
			// The new epoch's view: previous view overlaid with the dirty set.
			view := make(map[int64]byte)
			if n := len(model[g]); n > 0 {
				for pg, f := range model[g][n-1].view {
					view[pg] = f
				}
			}
			for pg, f := range want {
				view[pg] = f
			}
			model[g] = append(model[g], dedupModelEpoch{epoch: epoch, view: view})
		}

		drop := func(g int) {
			if len(model[g]) < 2 { // always keep at least one live epoch
				return
			}
			oldest := model[g][0]
			if err := s.DropEpoch(uint64(g+1), oldest.epoch); err != nil {
				t.Fatalf("seed %d: drop g%d e%d: %v", seed, g, oldest.epoch, err)
			}
			model[g] = model[g][1:]
		}

		verify := func() {
			for g := 0; g < groups; g++ {
				for _, me := range model[g] {
					pages, _, err := s.ResolvePages(uint64(g+1), uint64(oidOf+g), me.epoch)
					if err != nil {
						t.Fatalf("seed %d: resolve g%d e%d: %v", seed, g, me.epoch, err)
					}
					if len(pages) != len(me.view) {
						t.Fatalf("seed %d: g%d e%d resolved %d pages, want %d",
							seed, g, me.epoch, len(pages), len(me.view))
					}
					for pg, fill := range me.view {
						data, err := s.ReadBlock(pages[pg])
						if err != nil {
							t.Fatalf("seed %d: g%d e%d page %d: referenced block dropped: %v",
								seed, g, me.epoch, pg, err)
						}
						if !bytes.Equal(data, page(fill)) {
							t.Fatalf("seed %d: g%d e%d page %d corrupted (want fill %#x)",
								seed, g, me.epoch, pg, fill)
						}
					}
				}
			}
			if err := s.AuditReachability(); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		}

		// Warm up: one full epoch per group so every group is live.
		for g := 0; g < groups; g++ {
			put(g)
		}
		verify()

		for i := 0; i < rounds; i++ {
			g := rng.Intn(groups)
			if rng.Intn(3) == 0 {
				drop(g)
			} else {
				put(g)
			}
			verify()
		}

		// Shared pool means dedup must actually have fired; otherwise
		// this test exercises nothing.
		if s.Stats().DedupHits == 0 {
			t.Fatalf("seed %d: no cross-record dedup happened", seed)
		}
		// Drain every group to one epoch each and re-verify: the
		// surviving views still own every block they reference.
		for g := 0; g < groups; g++ {
			for len(model[g]) > 1 {
				drop(g)
			}
		}
		verify()
		st := s.Stats()
		t.Logf("seed %d: final stats: blocks=%d freed=%d dedup=%d live=%dB",
			seed, st.Blocks, st.BlocksFreed, st.DedupHits, st.LiveBytes)
	}
}
