package objstore

import (
	"bytes"
	"testing"
	"testing/quick"

	"aurora/internal/storage"
)

func testStore(t *testing.T) *Store {
	if t != nil {
		t.Helper()
	}
	clock := storage.NewClock()
	return Create(storage.NewMemDevice(storage.ParamsOptaneNVMe, clock), clock)
}

func page(fill byte) []byte {
	p := make([]byte, BlockSize)
	for i := range p {
		p[i] = fill
	}
	return p
}

func TestPutGetRecord(t *testing.T) {
	s := testStore(t)
	meta := []byte("process metadata")
	pages := map[int64][]byte{0: page(1), 3: page(2)}
	rec, err := s.PutRecord(1, 100, 1, 7, true, meta, pages, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Pages) != 2 {
		t.Fatalf("pages = %d", len(rec.Pages))
	}
	got, err := s.GetRecord(1, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Meta, meta) || got.Kind != 7 || !got.Full {
		t.Fatalf("record = %+v", got)
	}
	if _, err := s.GetRecord(1, 100, 2); err != ErrNoRecord {
		t.Fatalf("missing record err = %v", err)
	}
	// Blocks read back exactly.
	data, err := s.ReadBlock(got.Pages[3])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, page(2)) {
		t.Fatal("block contents corrupted")
	}
}

func TestDedupAcrossRecords(t *testing.T) {
	s := testStore(t)
	shared := page(0xaa)
	s.PutRecord(1, 1, 1, 1, true, nil, map[int64][]byte{0: shared, 1: page(1)}, nil)
	s.PutRecord(1, 2, 1, 1, true, nil, map[int64][]byte{0: shared, 1: page(2)}, nil)
	st := s.Stats()
	if st.Blocks != 3 {
		t.Fatalf("blocks = %d, want 3 (one shared)", st.Blocks)
	}
	if st.DedupHits != 1 {
		t.Fatalf("dedup hits = %d", st.DedupHits)
	}
	if st.LogicalBytes != 4*BlockSize {
		t.Fatalf("logical = %d", st.LogicalBytes)
	}
}

func TestManifestChainAndResolve(t *testing.T) {
	s := testStore(t)
	const group, oid = 5, 42

	// Epoch 1: full checkpoint with pages 0,1,2.
	s.PutRecord(group, oid, 1, 1, true, []byte("m1"),
		map[int64][]byte{0: page(10), 1: page(11), 2: page(12)}, nil)
	s.PutManifest(&Manifest{Group: group, Epoch: 1, Records: []RecordKey{{group, oid, 1}}, Roots: []uint64{oid}})

	// Epoch 2: incremental, page 1 dirtied.
	s.PutRecord(group, oid, 2, 1, false, []byte("m2"), map[int64][]byte{1: page(21)}, nil)
	s.PutManifest(&Manifest{Group: group, Epoch: 2, Prev: 1, Records: []RecordKey{{group, oid, 2}}, Roots: []uint64{oid}})

	// Epoch 3: incremental, pages 0 and 3 dirtied.
	s.PutRecord(group, oid, 3, 1, false, []byte("m3"), map[int64][]byte{0: page(30), 3: page(33)}, nil)
	s.PutManifest(&Manifest{Group: group, Epoch: 3, Prev: 2, Records: []RecordKey{{group, oid, 3}}, Roots: []uint64{oid}})

	pages, _, err := s.ResolvePages(group, oid, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int64]byte{0: 30, 1: 21, 2: 12, 3: 33}
	if len(pages) != len(want) {
		t.Fatalf("resolved %d pages, want %d", len(pages), len(want))
	}
	for idx, fill := range want {
		data, err := s.ReadBlock(pages[idx])
		if err != nil {
			t.Fatal(err)
		}
		if data[0] != fill {
			t.Fatalf("page %d = %#x, want %#x", idx, data[0], fill)
		}
	}

	// Resolving at epoch 2 sees the older view — time travel.
	pages2, _, err := s.ResolvePages(group, oid, 2)
	if err != nil {
		t.Fatal(err)
	}
	d0, _ := s.ReadBlock(pages2[0])
	if d0[0] != 10 {
		t.Fatalf("epoch-2 view of page 0 = %#x, want 10", d0[0])
	}
	if _, ok := pages2[3]; ok {
		t.Fatal("epoch-2 view contains a page from the future")
	}

	// Metadata resolution picks the newest at-or-before record.
	meta, kind, err := s.ResolveMeta(group, oid, 3)
	if err != nil || string(meta) != "m3" || kind != 1 {
		t.Fatalf("meta = %q kind=%d err=%v", meta, kind, err)
	}
}

func TestResolveMissingObject(t *testing.T) {
	s := testStore(t)
	s.PutManifest(&Manifest{Group: 1, Epoch: 1})
	if _, _, err := s.ResolvePages(1, 999, 1); err == nil {
		t.Fatal("resolving unknown object should fail")
	}
	if _, _, err := s.ResolvePages(9, 1, 1); err == nil {
		t.Fatal("resolving unknown group should fail")
	}
}

func TestNamedCheckpoints(t *testing.T) {
	s := testStore(t)
	s.PutManifest(&Manifest{Group: 1, Epoch: 4, Name: "before-upgrade"})
	m, err := s.NamedManifest("before-upgrade")
	if err != nil || m.Epoch != 4 {
		t.Fatalf("named lookup = %+v, %v", m, err)
	}
	if _, err := s.NamedManifest("nope"); err != ErrNoManifest {
		t.Fatalf("missing name err = %v", err)
	}
}

func TestLatestManifestAndGroups(t *testing.T) {
	s := testStore(t)
	if _, err := s.LatestManifest(3); err != ErrNoManifest {
		t.Fatalf("empty group err = %v", err)
	}
	s.PutManifest(&Manifest{Group: 3, Epoch: 1})
	s.PutManifest(&Manifest{Group: 3, Epoch: 5, Prev: 1})
	s.PutManifest(&Manifest{Group: 8, Epoch: 2})
	m, _ := s.LatestManifest(3)
	if m.Epoch != 5 {
		t.Fatalf("latest epoch = %d", m.Epoch)
	}
	gs := s.Groups()
	if len(gs) != 2 || gs[0] != 3 || gs[1] != 8 {
		t.Fatalf("groups = %v", gs)
	}
}

func TestGCDropOldestMergesForward(t *testing.T) {
	s := testStore(t)
	const group, oid = 1, 7
	s.PutRecord(group, oid, 1, 1, true, []byte("m1"),
		map[int64][]byte{0: page(1), 1: page(2), 2: page(3)}, nil)
	s.PutManifest(&Manifest{Group: group, Epoch: 1, Records: []RecordKey{{group, oid, 1}}})
	s.PutRecord(group, oid, 2, 1, false, []byte("m2"), map[int64][]byte{1: page(9)}, nil)
	s.PutManifest(&Manifest{Group: group, Epoch: 2, Prev: 1, Records: []RecordKey{{group, oid, 2}}})

	if err := s.DropEpoch(group, 1); err != nil {
		t.Fatal(err)
	}
	// Epoch 2 must now resolve standalone with the merged pages.
	pages, _, err := s.ResolvePages(group, oid, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int64]byte{0: 1, 1: 9, 2: 3}
	for idx, fill := range want {
		data, err := s.ReadBlock(pages[idx])
		if err != nil {
			t.Fatalf("page %d: %v", idx, err)
		}
		if data[0] != fill {
			t.Fatalf("page %d = %#x, want %#x", idx, data[0], fill)
		}
	}
	// The superseded epoch-1 page 1 was freed.
	if s.Stats().BlocksFreed != 1 {
		t.Fatalf("blocks freed = %d, want 1", s.Stats().BlocksFreed)
	}
	// Epoch 1 is gone.
	if _, err := s.Manifest(group, 1); err != ErrNoManifest {
		t.Fatal("dropped manifest still present")
	}
}

func TestGCIdleObjectMovesForward(t *testing.T) {
	s := testStore(t)
	const group = 1
	// Object 7 only has a record at epoch 1; epoch 2 checkpoint didn't
	// touch it (idle).
	s.PutRecord(group, 7, 1, 1, true, []byte("m"), map[int64][]byte{0: page(5)}, nil)
	s.PutManifest(&Manifest{Group: group, Epoch: 1, Records: []RecordKey{{group, 7, 1}}})
	s.PutManifest(&Manifest{Group: group, Epoch: 2, Prev: 1})

	if err := s.DropEpoch(group, 1); err != nil {
		t.Fatal(err)
	}
	pages, _, err := s.ResolvePages(group, 7, 2)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := s.ReadBlock(pages[0])
	if data[0] != 5 {
		t.Fatal("idle object's pages lost by GC")
	}
}

func TestGCDropLastEpochFreesEverything(t *testing.T) {
	s := testStore(t)
	s.PutRecord(1, 1, 1, 1, true, nil, map[int64][]byte{0: page(1), 1: page(2)}, nil)
	s.PutManifest(&Manifest{Group: 1, Epoch: 1, Records: []RecordKey{{1, 1, 1}}})
	if err := s.DropEpoch(1, 1); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Blocks != 0 || st.Records != 0 {
		t.Fatalf("store not empty after dropping only epoch: %+v", st)
	}
}

func TestGCFreedSpaceReusedInPlace(t *testing.T) {
	s := testStore(t)
	s.PutRecord(1, 1, 1, 1, true, nil, map[int64][]byte{0: page(1)}, nil)
	s.PutManifest(&Manifest{Group: 1, Epoch: 1, Records: []RecordKey{{1, 1, 1}}})
	rec, _ := s.GetRecord(1, 1, 1)
	freed := map[int64]bool{rec.Pages[0].Off: true, rec.metaOff: true}
	s.DropEpoch(1, 1)
	s.mu.Lock()
	highWater := s.nextOff
	s.mu.Unlock()

	// The next record's allocations (page block and metadata extent)
	// land on the freed space instead of growing the device.
	rec2, _ := s.PutRecord(1, 2, 1, 1, true, nil, map[int64][]byte{0: page(99)}, nil)
	if !freed[rec2.Pages[0].Off] {
		t.Fatalf("new block at %d, want a reused offset from %v", rec2.Pages[0].Off, freed)
	}
	s.mu.Lock()
	grown := s.nextOff != highWater
	s.mu.Unlock()
	if grown {
		t.Fatal("allocation grew the device despite freed space")
	}
}

func TestTrimHistory(t *testing.T) {
	s := testStore(t)
	const group, oid = 1, 3
	s.PutRecord(group, oid, 1, 1, true, nil, map[int64][]byte{0: page(1)}, nil)
	s.PutManifest(&Manifest{Group: group, Epoch: 1, Records: []RecordKey{{group, oid, 1}}})
	for e := uint64(2); e <= 6; e++ {
		s.PutRecord(group, oid, e, 1, false, nil, map[int64][]byte{int64(e): page(byte(e))}, nil)
		s.PutManifest(&Manifest{Group: group, Epoch: e, Prev: e - 1, Records: []RecordKey{{group, oid, e}}})
	}
	if err := s.TrimHistory(group, 2); err != nil {
		t.Fatal(err)
	}
	ms := s.Manifests(group)
	if len(ms) != 2 || ms[0].Epoch != 5 || ms[1].Epoch != 6 {
		t.Fatalf("history after trim = %v", ms)
	}
	// The trimmed history still resolves completely.
	pages, _, err := s.ResolvePages(group, oid, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(pages) != 6 { // page 0 plus pages 2..6
		t.Fatalf("resolved %d pages, want 6", len(pages))
	}
}

func TestSyncOpenRoundTrip(t *testing.T) {
	clock := storage.NewClock()
	dev := storage.NewMemDevice(storage.ParamsOptaneNVMe, clock)
	s := Create(dev, clock)
	s.PutRecord(4, 10, 1, 2, true, []byte("meta-a"), map[int64][]byte{0: page(1), 5: page(7)}, map[int64]uint32{0: 3})
	s.PutManifest(&Manifest{Group: 4, Epoch: 1, Name: "boot", Records: []RecordKey{{4, 10, 1}}, Roots: []uint64{10}})
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}

	// Simulated restart: mount the same device fresh.
	s2, err := Open(dev, clock)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := s2.GetRecord(4, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if string(rec.Meta) != "meta-a" || rec.Kind != 2 || !rec.Full {
		t.Fatalf("record after reopen = %+v", rec)
	}
	if rec.Heat[0] != 3 {
		t.Fatalf("heat lost across reopen: %v", rec.Heat)
	}
	data, err := s2.ReadBlock(rec.Pages[5])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, page(7)) {
		t.Fatal("block data lost across reopen")
	}
	m, err := s2.NamedManifest("boot")
	if err != nil || m.Group != 4 || m.Roots[0] != 10 {
		t.Fatalf("manifest after reopen = %+v, %v", m, err)
	}
	// Dedup index survives: rewriting the same page is a hit.
	before := s2.Stats().Blocks
	s2.PutRecord(4, 11, 1, 2, true, nil, map[int64][]byte{0: page(1)}, nil)
	if s2.Stats().Blocks != before {
		t.Fatal("dedup index lost across reopen")
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	clock := storage.NewClock()
	dev := storage.NewMemDevice(storage.ParamsDRAM, clock)
	dev.WriteAt([]byte("not a store"), 0)
	if _, err := Open(dev, clock); err != ErrBadMagic {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestShortPagesArePadded(t *testing.T) {
	s := testStore(t)
	rec, err := s.PutRecord(1, 1, 1, 1, true, nil, map[int64][]byte{0: []byte("short")}, nil)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := s.ReadBlock(rec.Pages[0])
	if len(data) != BlockSize || !bytes.HasPrefix(data, []byte("short")) {
		t.Fatal("short page not padded correctly")
	}
}

// Property: for any sequence of (epoch, dirty pages) the resolved view
// at the last epoch equals a straightforward replay of the writes.
func TestQuickIncrementalResolution(t *testing.T) {
	f := func(writes []uint16) bool {
		s := testStore(nil)
		const group, oid = 1, 2
		model := map[int64]byte{}

		// Epoch 1 is always a full checkpoint of page 0.
		s.PutRecord(group, oid, 1, 1, true, nil, map[int64][]byte{0: page(0)}, nil)
		s.PutManifest(&Manifest{Group: group, Epoch: 1, Records: []RecordKey{{group, oid, 1}}})
		model[0] = 0

		epoch := uint64(1)
		for _, w := range writes {
			epoch++
			idx := int64(w % 16)
			fill := byte(w >> 8)
			model[idx] = fill
			s.PutRecord(group, oid, epoch, 1, false, nil, map[int64][]byte{idx: page(fill)}, nil)
			s.PutManifest(&Manifest{Group: group, Epoch: epoch, Prev: epoch - 1,
				Records: []RecordKey{{group, oid, epoch}}})
		}
		pages, _, err := s.ResolvePages(group, oid, epoch)
		if err != nil {
			return false
		}
		if len(pages) != len(model) {
			return false
		}
		for idx, fill := range model {
			data, err := s.ReadBlock(pages[idx])
			if err != nil || data[0] != fill {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: GC never breaks resolution — dropping any prefix of the
// history leaves the latest view identical.
func TestQuickGCPreservesLatestView(t *testing.T) {
	f := func(writes []uint16, drops uint8) bool {
		s := testStore(nil)
		const group, oid = 1, 2
		s.PutRecord(group, oid, 1, 1, true, nil, map[int64][]byte{0: page(0)}, nil)
		s.PutManifest(&Manifest{Group: group, Epoch: 1, Records: []RecordKey{{group, oid, 1}}})
		epoch := uint64(1)
		for _, w := range writes {
			epoch++
			s.PutRecord(group, oid, epoch, 1, false, nil,
				map[int64][]byte{int64(w % 8): page(byte(w >> 8))}, nil)
			s.PutManifest(&Manifest{Group: group, Epoch: epoch, Prev: epoch - 1,
				Records: []RecordKey{{group, oid, epoch}}})
		}
		before := snapshotView(s, group, oid, epoch)
		if before == nil {
			return false
		}
		n := int(drops) % (len(writes) + 1)
		for i := 0; i < n; i++ {
			oldest := s.Manifests(group)[0].Epoch
			if err := s.DropEpoch(group, oldest); err != nil {
				return false
			}
		}
		after := snapshotView(s, group, oid, epoch)
		if after == nil {
			return false
		}
		if len(before) != len(after) {
			return false
		}
		for idx, data := range before {
			if !bytes.Equal(after[idx], data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func snapshotView(s *Store, group, oid, epoch uint64) map[int64][]byte {
	pages, _, err := s.ResolvePages(group, oid, epoch)
	if err != nil {
		return nil
	}
	out := make(map[int64][]byte, len(pages))
	for idx, ref := range pages {
		data, err := s.ReadBlock(ref)
		if err != nil {
			return nil
		}
		out[idx] = data
	}
	return out
}
