package core

import (
	"bytes"
	"errors"
	"testing"

	"aurora/internal/objstore"
	"aurora/internal/storage"
)

// quarantineWorkload checkpoints a counter group n times against the
// rig's store backend and returns the group plus the counter value
// captured at each epoch.
func quarantineWorkload(t *testing.T, r *rig, n int) (*Group, map[uint64]uint64) {
	t.Helper()
	p := spawnCounter(t, r)
	g, err := r.o.Persist("app", p)
	if err != nil {
		t.Fatal(err)
	}
	r.o.Attach(g, r.store)
	vals := make(map[uint64]uint64)
	for i := 0; i < n; i++ {
		r.k.Run(2)
		if _, err := r.o.Checkpoint(g, CheckpointOpts{}); err != nil {
			t.Fatal(err)
		}
		vals[g.Epoch()] = counterValue(p)
	}
	if err := r.o.Sync(g); err != nil {
		t.Fatal(err)
	}
	return g, vals
}

// corruptEpochBlock overwrites one data block belonging to exactly
// (group, epoch) — a block the epoch's own record wrote, so older
// epochs resolve to different (clean) blocks — with garbage, directly
// on the device underneath the store.
func corruptEpochBlock(t *testing.T, sb *StoreBackend, group, epoch uint64) {
	t.Helper()
	m, err := sb.store.Manifest(group, epoch)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range m.Records {
		if key.OID&vmBit == 0 || key.Epoch != epoch {
			continue
		}
		rec, err := sb.store.GetRecord(key.Group, key.OID, key.Epoch)
		if err != nil {
			t.Fatal(err)
		}
		for _, ref := range rec.Pages {
			garbage := bytes.Repeat([]byte{0xAA}, objstore.BlockSize)
			if _, err := sb.store.Device().WriteAt(garbage, ref.Off); err != nil {
				t.Fatal(err)
			}
			return
		}
	}
	t.Fatalf("epoch %d wrote no data block to corrupt", epoch)
}

// TestQuarantineValidateFallsBack: the Validate pre-pass catches a
// corrupted newest epoch, quarantines it (visibly, durably), and the
// restore lands on the previous epoch bit-identical.
func TestQuarantineValidateFallsBack(t *testing.T) {
	r := newRig(t)
	g, vals := quarantineWorkload(t, r, 3)
	bad := g.Durable()
	corruptEpochBlock(t, r.store, g.ID, bad)

	ng, bd, err := r.o.Restore(g, 0, RestoreOpts{Validate: true})
	if err != nil {
		t.Fatalf("restore should fall back, got %v", err)
	}
	if bd.FallbackFrom != bad {
		t.Fatalf("FallbackFrom = %d, want %d", bd.FallbackFrom, bad)
	}
	if bd.Quarantined != 1 || !bd.Validated {
		t.Fatalf("Quarantined=%d Validated=%v", bd.Quarantined, bd.Validated)
	}
	np, err := r.k.Process(ng.PIDs()[0])
	if err != nil {
		t.Fatal(err)
	}
	if got := counterValue(np); got != vals[bad-1] {
		t.Fatalf("restored counter = %d, want epoch %d's %d", got, bad-1, vals[bad-1])
	}
	// The quarantine is recorded in the store and on the group.
	if !r.store.store.IsQuarantined(g.ID, bad) {
		t.Fatal("store does not record the quarantine")
	}
	if why, ok := ng.Quarantined()[bad]; !ok || why == "" {
		t.Fatalf("group quarantine ledger = %v", ng.Quarantined())
	}
}

// TestQuarantineEagerLoadCorruption: without the pre-pass, the eager
// load's hash-verified block reads catch the corruption mid-load and
// trigger the same quarantine + fallback.
func TestQuarantineEagerLoadCorruption(t *testing.T) {
	r := newRig(t)
	g, vals := quarantineWorkload(t, r, 3)
	bad := g.Durable()
	corruptEpochBlock(t, r.store, g.ID, bad)

	ng, bd, err := r.o.Restore(g, 0, RestoreOpts{})
	if err != nil {
		t.Fatalf("eager restore should fall back, got %v", err)
	}
	if bd.FallbackFrom != bad || bd.Quarantined != 1 {
		t.Fatalf("FallbackFrom=%d Quarantined=%d, want %d/1", bd.FallbackFrom, bd.Quarantined, bad)
	}
	np, _ := r.k.Process(ng.PIDs()[0])
	if got := counterValue(np); got != vals[bad-1] {
		t.Fatalf("restored counter = %d, want %d", got, vals[bad-1])
	}
	if !r.store.store.IsQuarantined(g.ID, bad) {
		t.Fatal("mid-load corruption did not quarantine the epoch")
	}
}

// TestQuarantineExplicitEpochFallsBack: explicitly asking for a
// quarantined epoch does not resurrect it — the restore reports the
// fallback instead.
func TestQuarantineExplicitEpochFallsBack(t *testing.T) {
	r := newRig(t)
	g, vals := quarantineWorkload(t, r, 3)
	bad := g.Durable()
	corruptEpochBlock(t, r.store, g.ID, bad)
	if _, _, err := r.o.Restore(g, 0, RestoreOpts{Validate: true}); err != nil {
		t.Fatal(err)
	}

	// Second restore, explicitly naming the poisoned epoch.
	ng, bd, err := r.o.Restore(g, bad, RestoreOpts{})
	if err != nil {
		t.Fatalf("explicit restore of quarantined epoch should fall back: %v", err)
	}
	if bd.FallbackFrom != bad {
		t.Fatalf("FallbackFrom = %d, want %d", bd.FallbackFrom, bad)
	}
	np, _ := r.k.Process(ng.PIDs()[0])
	if got := counterValue(np); got != vals[bad-1] {
		t.Fatalf("restored counter = %d, want %d", got, vals[bad-1])
	}
}

// TestQuarantineAllEpochsPoisoned: when every epoch fails validation,
// the restore fails with an error selectable as ErrEpochQuarantined —
// not a generic "no image".
func TestQuarantineAllEpochsPoisoned(t *testing.T) {
	r := newRig(t)
	g, _ := quarantineWorkload(t, r, 3)
	for _, ep := range r.store.Epochs(g.ID) {
		corruptEpochBlock(t, r.store, g.ID, ep)
	}
	_, _, err := r.o.Restore(g, 0, RestoreOpts{Validate: true})
	if err == nil {
		t.Fatal("restore of an all-poisoned chain must fail")
	}
	if !errors.Is(err, ErrEpochQuarantined) {
		t.Fatalf("error not selectable as ErrEpochQuarantined: %v", err)
	}
}

// TestQuarantinePersistsAcrossRemount: a quarantine mark written by a
// failed restore survives store Sync + reopen, so the poisoned epoch
// stays skipped after the machine reboots.
func TestQuarantinePersistsAcrossRemount(t *testing.T) {
	clock := storage.NewClock()
	dev := storage.NewMemDevice(storage.ParamsOptaneNVMe, clock)

	r := newRig(t)
	st := objstore.Create(dev, clock)
	sb := NewStoreBackend(st, r.k.Mem, r.clock)
	p := spawnCounter(t, r)
	g, err := r.o.Persist("app", p)
	if err != nil {
		t.Fatal(err)
	}
	r.o.Attach(g, sb)
	for i := 0; i < 3; i++ {
		r.k.Run(2)
		if _, err := r.o.Checkpoint(g, CheckpointOpts{}); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.o.Sync(g); err != nil {
		t.Fatal(err)
	}
	bad := g.Durable()
	corruptEpochBlock(t, sb, g.ID, bad)
	if _, _, err := r.o.Restore(g, 0, RestoreOpts{Validate: true}); err != nil {
		t.Fatal(err)
	}
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}

	st2, err := objstore.Open(dev, clock)
	if err != nil {
		t.Fatal(err)
	}
	if !st2.IsQuarantined(g.ID, bad) {
		t.Fatal("quarantine mark lost across remount")
	}
	if why := st2.QuarantinedEpochs(g.ID)[bad]; why == "" {
		t.Fatal("quarantine reason lost across remount")
	}
	// A reboot-restore from the remounted store skips the epoch.
	m, err := st2.LatestGoodManifest(g.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Epoch != bad-1 {
		t.Fatalf("latest good epoch after remount = %d, want %d", m.Epoch, bad-1)
	}
}
