package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"aurora/internal/storage"
)

// This file implements elasticity on top of the PR 9 placement control
// plane: the Autoscaler decides WHEN the fleet should grow or shrink,
// the Placer decides WHERE everything lives. The autoscaler is a
// control loop on its own detached clock lane that samples per-store
// utilization signals — space use, resident-primary load, evacuation
// backlog, checkpoint admission sheds — into a sliding window and
// drives three actions:
//
//   - Scale-out: when the fleet-wide high-watermark utilization (or
//     the shed rate) holds above the high target for the whole window,
//     a provisioned StoreNode is admitted from the warm pool and
//     seeded via paced rebalance. A pool node that fails its admission
//     probe is skipped with a recorded decision — a warm spare can be
//     dead on arrival.
//   - Scale-in: when every store holds below the low target for the
//     whole window, the emptiest store (from the best-populated
//     failure domain, so shrinking never breaks anti-affinity
//     feasibility) drains through the live-migration path one step per
//     tick. A drain that hits ErrNoFeasiblePlacement, or a fleet that
//     re-pressurizes mid-drain, rolls back: the store is re-admitted
//     via Undrain with its wires re-handshaken, leaving zero fenced
//     survivors.
//   - Continuous rebalance: every idle tick runs one budgeted
//     RebalanceTick, so drift heals in the background without an
//     operator poke and without starving foreground checkpoints.
//
// Hysteresis comes from three mechanisms stacked: the window (a
// trigger must hold for Window consecutive samples), the cooldown (no
// new scale action for Cooldown ticks after one completes), and the
// window reset (every completed action clears the sample history, so
// the next decision is made from post-action evidence only). The
// exactly-one-primary-at-max-gen and durable-monotone invariants are
// audited every tick; violations are recorded and surface through
// InvariantViolations for the chaos gate to assert empty.

// ErrScalingInProgress refuses a manual scale verb while another scale
// action is mid-flight (CLI exit code 12).
var ErrScalingInProgress = errors.New("core: scale action already in progress")

// ScaleDecision records one autoscaler tick's decision — the
// observability trail the chaos gate and the CLI read.
type ScaleDecision struct {
	Tick    uint64
	At      time.Duration // autoscaler lane time
	Action  string        // "hold", "seeding", "draining", "scale-out", "scale-out-skipped", "scale-out-done", "scale-in-begin", "scale-in-done", "scale-in-rollback", "scale-in-stalled"
	Store   string        // the store acted on, when any
	Reason  string
	Util    float64 // fleet high-watermark utilization at decision time
	Sheds   int64   // checkpoint admissions shed since the previous tick
	Backlog int     // evacuation + repair queue depth
	Moves   int     // rebalance migrations performed this tick
	Err     error
}

// StoreSignal is one store's slice of an autoscaler sample.
type StoreSignal struct {
	Store     string
	Domain    string
	State     StoreState
	Util      float64 // composite utilization (space vs primary load)
	SpaceFrac float64
	Primaries int
}

// AutoscaleSignals is one control-loop sample of the fleet.
type AutoscaleSignals struct {
	Tick     uint64
	At       time.Duration
	Active   int     // stores in StoreActive
	Util     float64 // max utilization over non-draining active stores
	MinUtil  float64 // min utilization over active stores
	Sheds    int64   // admission sheds since the previous sample
	Backlog  int     // evacuation + repair queue depth
	PerStore []StoreSignal
}

// AutoscalerConfig tunes the control loop. Zero values select
// defaults.
type AutoscalerConfig struct {
	// HighUtil is the scale-out trigger: fleet high-watermark
	// utilization at or above this for a full window admits a store
	// (default 0.85).
	HighUtil float64
	// LowUtil is the scale-in trigger: every active store below this
	// for a full window drains one (default 0.30).
	LowUtil float64
	// ShedRate is the alternate scale-out trigger: checkpoint
	// admission sheds per tick at or above this for a full window
	// (default 1; admission control actively refusing barriers is
	// overload regardless of what utilization claims).
	ShedRate float64
	// Window is the sliding sample window a trigger must hold through
	// (default 3 ticks).
	Window int
	// Cooldown is the tick count after a completed scale action during
	// which no new action starts (default 2).
	Cooldown int
	// MinStores / MaxStores bound the active fleet (defaults 2 /
	// unbounded).
	MinStores int
	MaxStores int
	// RebalanceBudget caps background rebalance migrations per tick
	// (default 1).
	RebalanceBudget int
	// DrainBudget caps scale-in migrations per tick (default 2).
	DrainBudget int
	// SeedTicksMax bounds the seeding phase after a scale-out before
	// the autoscaler returns to idle regardless (default 16).
	SeedTicksMax int
	// TickInterval is the lane time one tick represents (default
	// 500µs) — convergence times are measured in this virtual time.
	TickInterval time.Duration
	// Lane is the autoscaler's detached clock lane (default: a fresh
	// clock). Pass a machine clock's Lane() to tie decisions to a
	// topology's timebase.
	Lane *storage.Clock
}

func (c AutoscalerConfig) highUtil() float64 {
	if c.HighUtil > 0 {
		return c.HighUtil
	}
	return 0.85
}

func (c AutoscalerConfig) lowUtil() float64 {
	if c.LowUtil > 0 {
		return c.LowUtil
	}
	return 0.30
}

func (c AutoscalerConfig) shedRate() float64 {
	if c.ShedRate > 0 {
		return c.ShedRate
	}
	return 1
}

func (c AutoscalerConfig) window() int {
	if c.Window > 0 {
		return c.Window
	}
	return 3
}

func (c AutoscalerConfig) cooldown() int {
	if c.Cooldown > 0 {
		return c.Cooldown
	}
	return 2
}

func (c AutoscalerConfig) minStores() int {
	if c.MinStores > 0 {
		return c.MinStores
	}
	return 2
}

func (c AutoscalerConfig) rebalanceBudget() int {
	if c.RebalanceBudget > 0 {
		return c.RebalanceBudget
	}
	return 1
}

func (c AutoscalerConfig) drainBudget() int {
	if c.DrainBudget > 0 {
		return c.DrainBudget
	}
	return 2
}

func (c AutoscalerConfig) seedTicksMax() int {
	if c.SeedTicksMax > 0 {
		return c.SeedTicksMax
	}
	return 16
}

func (c AutoscalerConfig) tickInterval() time.Duration {
	if c.TickInterval > 0 {
		return c.TickInterval
	}
	return 500 * time.Microsecond
}

type scalePhase int

const (
	scaleIdle scalePhase = iota
	scaleSeeding
	scaleDraining
)

func (ph scalePhase) String() string {
	switch ph {
	case scaleSeeding:
		return "scaling-out"
	case scaleDraining:
		return "scaling-in"
	default:
		return "idle"
	}
}

// AutoscaleStatus is the loop's visible state (the CLI's autoscale
// status view).
type AutoscaleStatus struct {
	Phase        string
	Tick         uint64
	At           time.Duration
	Active       int
	Target       int // active count the current phase is converging to
	Pool         int // warm spares remaining
	Util         float64
	Draining     string // store mid-scale-in, when any
	Seeding      string // store mid-scale-out, when any
	CooldownLeft int
}

// Autoscaler is the elasticity control loop over one Placer.
type Autoscaler struct {
	p   *Placer
	cfg AutoscalerConfig

	mu        sync.Mutex
	lane      *storage.Clock
	pool      []*StoreNode // warm spares, admission order
	tick      uint64
	phase     scalePhase
	window    []AutoscaleSignals
	decisions []ScaleDecision

	cooldownUntil uint64
	seedStore     *StoreNode
	seedStart     uint64
	drainStore    *StoreNode
	drainRetries  int
	skipUntil     map[*StoreNode]uint64 // rolled-back drainees, backoff

	lastSheds   int64
	lastDurable map[uint64]uint64 // lineage → high-water durable frontier
	violations  []string
}

// NewAutoscaler builds the control loop over p. Warm spares are added
// with AddWarmStore; nothing scales until Tick is driven.
func NewAutoscaler(p *Placer, cfg AutoscalerConfig) *Autoscaler {
	lane := cfg.Lane
	if lane == nil {
		lane = storage.NewClock()
	}
	return &Autoscaler{
		p:           p,
		cfg:         cfg,
		lane:        lane,
		skipUntil:   make(map[*StoreNode]uint64),
		lastDurable: make(map[uint64]uint64),
	}
}

// AddWarmStore provisions a spare: built and labeled but not admitted.
// Scale-out pops spares in provisioning order.
func (a *Autoscaler) AddWarmStore(n *StoreNode) error {
	if n.Name == "" || n.Domain == "" {
		return fmt.Errorf("core: warm store needs a name and a failure domain")
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.pool = append(a.pool, n)
	return nil
}

// PoolSize reports the remaining warm spares.
func (a *Autoscaler) PoolSize() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.pool)
}

// Decisions returns every decision recorded so far.
func (a *Autoscaler) Decisions() []ScaleDecision {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]ScaleDecision(nil), a.decisions...)
}

// Signals returns the current sample window, oldest first.
func (a *Autoscaler) Signals() []AutoscaleSignals {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]AutoscaleSignals(nil), a.window...)
}

// InvariantViolations returns every invariant audit failure observed
// across all ticks. The chaos gate asserts this stays empty.
func (a *Autoscaler) InvariantViolations() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]string(nil), a.violations...)
}

// Status reports the loop's visible state.
func (a *Autoscaler) Status() AutoscaleStatus {
	a.mu.Lock()
	defer a.mu.Unlock()
	st := AutoscaleStatus{
		Phase: a.phase.String(),
		Tick:  a.tick,
		At:    a.lane.Now(),
		Pool:  len(a.pool),
	}
	active := a.activeStores()
	st.Active = len(active)
	st.Target = st.Active
	for _, n := range active {
		if u := a.p.Utilization(n); u > st.Util {
			st.Util = u
		}
	}
	switch a.phase {
	case scaleSeeding:
		st.Seeding = a.seedStore.Name
	case scaleDraining:
		st.Draining = a.drainStore.Name
		st.Target = st.Active - 1
	}
	if a.cooldownUntil > a.tick {
		st.CooldownLeft = int(a.cooldownUntil - a.tick)
	}
	return st
}

// activeStores lists StoreActive nodes. Caller holds a.mu; takes the
// placer's lock via Stores/State only.
func (a *Autoscaler) activeStores() []*StoreNode {
	var out []*StoreNode
	for _, n := range a.p.Stores() {
		if n.State() == StoreActive {
			out = append(out, n)
		}
	}
	return out
}

// sample reads one AutoscaleSignals snapshot and appends it to the
// window. Caller holds a.mu.
func (a *Autoscaler) sample() AutoscaleSignals {
	sig := AutoscaleSignals{Tick: a.tick, At: a.lane.Now(), MinUtil: -1}
	evac, repair := a.p.QueueDepths()
	sig.Backlog = evac + repair

	var sheds int64
	for _, pl := range a.p.Placements() {
		if g := pl.Group(); g != nil {
			t, _ := g.Sheds()
			sheds += t
		}
	}
	// Evacuations replace groups (resetting their shed counters), so
	// clamp the delta at zero rather than reporting a negative rate.
	if d := sheds - a.lastSheds; d > 0 {
		sig.Sheds = d
	}
	a.lastSheds = sheds

	for _, n := range a.p.Stores() {
		st := n.State()
		ss := StoreSignal{
			Store:  n.Name,
			Domain: n.Domain,
			State:  st,
			Util:   a.p.Utilization(n),
		}
		ss.SpaceFrac = n.usageFrac()
		ss.Primaries = a.p.primaries(n)
		sig.PerStore = append(sig.PerStore, ss)
		if st != StoreActive {
			continue
		}
		sig.Active++
		if sig.MinUtil < 0 || ss.Util < sig.MinUtil {
			sig.MinUtil = ss.Util
		}
		// The high-watermark excludes the drainee: a store being
		// emptied reads hot while its residents leave, and that must
		// not mask (or fake) fleet pressure.
		if n != a.drainStore && ss.Util > sig.Util {
			sig.Util = ss.Util
		}
	}
	if sig.MinUtil < 0 {
		sig.MinUtil = 0
	}

	a.window = append(a.window, sig)
	if w := a.cfg.window(); len(a.window) > w {
		a.window = a.window[len(a.window)-w:]
	}
	return sig
}

// primaries is the exported-to-package counter behind StoreSignal.
func (p *Placer) primaries(n *StoreNode) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.primariesLocked(n)
}

// audit asserts the two PR 8 invariants across the fleet after this
// tick's actions: durable never regresses along a lineage, and no two
// stores claim the primary role for one lineage at the same max
// generation. Caller holds a.mu.
func (a *Autoscaler) audit() {
	for _, pl := range a.p.Placements() {
		g := pl.Group()
		if g == nil {
			continue
		}
		if _, err := a.p.Lookup(pl.Lineage); err != nil {
			continue // mid-evacuation or lost: audited once re-homed
		}
		d := g.Durable()
		if prev, ok := a.lastDurable[pl.Lineage]; ok && d < prev {
			a.violations = append(a.violations,
				fmt.Sprintf("tick %d: lineage %d durable regressed %d → %d", a.tick, pl.Lineage, prev, d))
		}
		a.lastDurable[pl.Lineage] = d

		maxGen := uint64(0)
		claims := 0
		for _, n := range a.p.Stores() {
			gen, ok := n.SB.Store().PrimaryGen(pl.Lineage)
			if !ok {
				continue
			}
			if gen > maxGen {
				maxGen, claims = gen, 1
			} else if gen == maxGen {
				claims++
			}
		}
		if maxGen > 0 && claims != 1 {
			a.violations = append(a.violations,
				fmt.Sprintf("tick %d: lineage %d has %d primary claims at max gen %d", a.tick, pl.Lineage, claims, maxGen))
		}
	}
}

// Tick runs one control-loop round: advance the lane, poll the placer
// (deaths and evacuations feed the signals), sample, decide, and run
// the background rebalance pacer. It returns this tick's decision and
// every placer event the tick produced.
func (a *Autoscaler) Tick() (ScaleDecision, []PlacerEvent) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.tick++
	a.lane.Advance(a.cfg.tickInterval())

	evs := a.p.Poll()
	sig := a.sample()
	dec := ScaleDecision{Tick: a.tick, At: sig.At, Util: sig.Util, Sheds: sig.Sheds, Backlog: sig.Backlog}

	switch a.phase {
	case scaleSeeding:
		a.seedTick(&dec, sig)
	case scaleDraining:
		devs := a.drainTick(&dec, sig)
		evs = append(evs, devs...)
	default:
		a.decide(&dec, sig)
	}

	// Background pacer: paced rebalance runs through idle and seeding
	// ticks (seeding IS rebalance toward the fresh store) but stays
	// out of a drain's way.
	if a.phase != scaleDraining {
		opts := RebalanceOpts{Budget: a.cfg.rebalanceBudget()}
		if a.phase == scaleSeeding {
			opts.HighWater = a.cfg.highUtil()
		}
		revs, _ := a.p.RebalanceTick(opts)
		for _, ev := range revs {
			if ev.Kind == "rebalanced" && ev.Err == nil {
				dec.Moves++
			}
		}
		evs = append(evs, revs...)
	}

	a.audit()
	a.decisions = append(a.decisions, dec)
	return dec, evs
}

// decide runs the idle-phase trigger logic. Caller holds a.mu.
func (a *Autoscaler) decide(dec *ScaleDecision, sig AutoscaleSignals) {
	dec.Action = "hold"
	if a.tick < a.cooldownUntil {
		dec.Reason = "cooldown"
		return
	}
	w := a.cfg.window()
	if len(a.window) < w {
		dec.Reason = "window filling"
		return
	}
	recent := a.window[len(a.window)-w:]

	allHigh, allShed, allLow := true, true, true
	for _, s := range recent {
		if s.Util < a.cfg.highUtil() {
			allHigh = false
		}
		if float64(s.Sheds) < a.cfg.shedRate() {
			allShed = false
		}
		if s.Util >= a.cfg.lowUtil() {
			allLow = false
		}
	}

	if allHigh || allShed {
		if a.cfg.MaxStores > 0 && sig.Active >= a.cfg.MaxStores {
			dec.Reason = "at max stores"
			return
		}
		reason := "high-watermark held above target"
		if !allHigh {
			reason = "shed rate held above target"
		}
		a.scaleOut(dec, reason)
		return
	}

	if allLow {
		if sig.Active <= a.cfg.minStores() {
			dec.Reason = "at min stores"
			return
		}
		if sig.Backlog > 0 {
			dec.Reason = "evacuation backlog"
			return
		}
		a.scaleIn(dec)
		return
	}
	dec.Reason = "within band"
}

// scaleOut admits the first healthy warm spare. Dead spares are
// skipped with their own recorded decisions — the chaos gate injects
// one deliberately. Caller holds a.mu.
func (a *Autoscaler) scaleOut(dec *ScaleDecision, reason string) {
	for len(a.pool) > 0 {
		n := a.pool[0]
		a.pool = a.pool[1:]
		// A flaky (fault-injected) spare may fail one probe without
		// being dead; only a spare that fails every roll is discarded.
		var perr error
		for attempt := 0; attempt < 3; attempt++ {
			if perr = a.p.probe(n); perr == nil {
				break
			}
		}
		if perr != nil {
			a.decisions = append(a.decisions, ScaleDecision{
				Tick: a.tick, At: a.lane.Now(), Action: "scale-out-skipped",
				Store: n.Name, Reason: "warm spare failed admission probe", Err: perr,
			})
			continue
		}
		if err := a.p.AddStore(n); err != nil {
			a.decisions = append(a.decisions, ScaleDecision{
				Tick: a.tick, At: a.lane.Now(), Action: "scale-out-skipped",
				Store: n.Name, Reason: "admission failed", Err: err,
			})
			continue
		}
		dec.Action = "scale-out"
		dec.Store = n.Name
		dec.Reason = reason
		a.phase = scaleSeeding
		a.seedStore = n
		a.seedStart = a.tick
		return
	}
	dec.Action = "hold"
	dec.Reason = "warm pool empty"
}

// seedTick runs one scaling-out tick: the pacer (run by Tick after
// this) shifts load toward the fresh store; seeding completes when the
// fleet pressure is relieved, the new store carries its share, or the
// seed budget runs out. Caller holds a.mu.
func (a *Autoscaler) seedTick(dec *ScaleDecision, sig AutoscaleSignals) {
	n := a.seedStore
	dec.Store = n.Name
	if n.State() != StoreActive {
		// The fresh store died during seeding; Poll already queued its
		// evacuations. Return to idle and let the window refill.
		dec.Action = "scale-out-done"
		dec.Reason = "seed store left active state"
		a.finishAction()
		return
	}
	share := 0
	if sig.Active > 0 {
		total := 0
		for _, s := range sig.PerStore {
			if s.State == StoreActive {
				total += s.Primaries
			}
		}
		share = total / sig.Active
	}
	switch {
	case sig.Util < a.cfg.highUtil():
		dec.Action = "scale-out-done"
		dec.Reason = "pressure relieved"
		a.finishAction()
	case a.p.primaries(n) >= share && share > 0:
		dec.Action = "scale-out-done"
		dec.Reason = "seed store carries its share"
		a.finishAction()
	case a.tick-a.seedStart >= uint64(a.cfg.seedTicksMax()):
		dec.Action = "scale-out-done"
		dec.Reason = "seed budget exhausted"
		a.finishAction()
	default:
		dec.Action = "seeding"
	}
}

// scaleIn picks the drainee and begins the drain. The candidate is the
// emptiest active store whose removal keeps at least Replicas distinct
// failure domains alive, preferring the best-populated domain so
// shrinking never strands anti-affinity. Caller holds a.mu.
func (a *Autoscaler) scaleIn(dec *ScaleDecision) {
	active := a.activeStores()
	domains := make(map[string]int)
	for _, n := range active {
		domains[n.Domain]++
	}
	need := a.p.cfg.replicas()

	var cands []*StoreNode
	for _, n := range active {
		if a.skipUntil[n] > a.tick {
			continue
		}
		left := len(domains)
		if domains[n.Domain] == 1 {
			left--
		}
		if left < need {
			continue
		}
		cands = append(cands, n)
	}
	if len(cands) == 0 {
		dec.Action = "hold"
		dec.Reason = "no drainable store (anti-affinity or backoff)"
		return
	}
	sort.Slice(cands, func(i, j int) bool {
		di, dj := domains[cands[i].Domain], domains[cands[j].Domain]
		if di != dj {
			return di > dj // best-populated domain first
		}
		ui, uj := a.p.Utilization(cands[i]), a.p.Utilization(cands[j])
		if ui != uj {
			return ui < uj // emptiest first
		}
		return cands[i].Name < cands[j].Name
	})
	n := cands[0]
	if err := a.p.BeginDrain(n); err != nil {
		dec.Action = "hold"
		dec.Store = n.Name
		dec.Reason = "drain refused"
		dec.Err = err
		return
	}
	dec.Action = "scale-in-begin"
	dec.Store = n.Name
	dec.Reason = "utilization held below target"
	a.phase = scaleDraining
	a.drainStore = n
	a.drainRetries = 0
}

// drainTick advances (or rolls back) a scale-in by one step. Caller
// holds a.mu.
func (a *Autoscaler) drainTick(dec *ScaleDecision, sig AutoscaleSignals) []PlacerEvent {
	n := a.drainStore
	dec.Store = n.Name
	if n.State() != StoreDraining {
		// The drainee died (or was fenced externally) mid-drain; Poll
		// already handles a dead store's residents.
		dec.Action = "scale-in-done"
		dec.Reason = fmt.Sprintf("drainee left draining state (%s)", n.State())
		a.finishAction()
		return nil
	}
	if sig.Util >= a.cfg.highUtil() {
		// The fleet re-pressurized mid-drain (burst arrivals, or a
		// store death re-homing load): removing capacity now is wrong.
		// Roll back immediately — aborting a drain is cheap, so this
		// uses the instantaneous signal, not the window.
		err := a.p.Undrain(n)
		dec.Action = "scale-in-rollback"
		dec.Reason = "fleet re-pressurized mid-drain"
		dec.Err = err
		a.skipUntil[n] = a.tick + 4*uint64(a.cfg.cooldown())
		a.finishAction()
		return nil
	}
	evs, done, err := a.p.DrainStep(n, a.cfg.drainBudget())
	switch {
	case err != nil && errors.Is(err, ErrNoFeasiblePlacement):
		uerr := a.p.Undrain(n)
		dec.Action = "scale-in-rollback"
		dec.Reason = "drain hit no-feasible-placement"
		dec.Err = errors.Join(err, uerr)
		a.skipUntil[n] = a.tick + 4*uint64(a.cfg.cooldown())
		a.finishAction()
	case err != nil && a.drainRetries >= 3:
		uerr := a.p.Undrain(n)
		dec.Action = "scale-in-rollback"
		dec.Reason = "drain stalled past retry budget"
		dec.Err = errors.Join(err, uerr)
		a.skipUntil[n] = a.tick + 4*uint64(a.cfg.cooldown())
		a.finishAction()
	case err != nil:
		a.drainRetries++
		dec.Action = "scale-in-stalled"
		dec.Reason = "drain step failed, retrying"
		dec.Err = err
	case done:
		dec.Action = "scale-in-done"
		dec.Reason = "store emptied and fenced"
		a.finishAction()
	default:
		dec.Action = "draining"
	}
	return evs
}

// finishAction returns to idle, arms the cooldown, and clears the
// sample window so the next decision is made from post-action
// evidence only. Caller holds a.mu.
func (a *Autoscaler) finishAction() {
	a.phase = scaleIdle
	a.seedStore = nil
	a.drainStore = nil
	a.drainRetries = 0
	a.cooldownUntil = a.tick + uint64(a.cfg.cooldown())
	a.window = nil
}

// ScaleOut manually admits one warm spare, bypassing the window but
// not the phase machine: a scale action already in flight refuses with
// ErrScalingInProgress.
func (a *Autoscaler) ScaleOut() (ScaleDecision, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.phase != scaleIdle {
		return ScaleDecision{}, fmt.Errorf("core: %s: %w", a.phase, ErrScalingInProgress)
	}
	dec := ScaleDecision{Tick: a.tick, At: a.lane.Now()}
	if a.cfg.MaxStores > 0 && len(a.activeStores()) >= a.cfg.MaxStores {
		return ScaleDecision{}, fmt.Errorf("core: fleet at max stores (%d): %w", a.cfg.MaxStores, ErrNoFeasiblePlacement)
	}
	a.scaleOut(&dec, "manual scale-out")
	a.decisions = append(a.decisions, dec)
	if dec.Action != "scale-out" {
		return dec, fmt.Errorf("core: scale-out: %s: %w", dec.Reason, ErrNoFeasiblePlacement)
	}
	return dec, nil
}

// ScaleIn manually begins draining the named store (or the
// autoscaler's own pick when name is empty). Refuses with
// ErrScalingInProgress while another action is in flight; subsequent
// Ticks advance the drain.
func (a *Autoscaler) ScaleIn(name string) (ScaleDecision, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.phase != scaleIdle {
		return ScaleDecision{}, fmt.Errorf("core: %s: %w", a.phase, ErrScalingInProgress)
	}
	dec := ScaleDecision{Tick: a.tick, At: a.lane.Now()}
	if len(a.activeStores()) <= a.cfg.minStores() {
		return ScaleDecision{}, fmt.Errorf("core: fleet at min stores (%d): %w", a.cfg.minStores(), ErrNoFeasiblePlacement)
	}
	if name == "" {
		a.scaleIn(&dec)
	} else {
		n, err := a.p.Node(name)
		if err != nil {
			return ScaleDecision{}, err
		}
		if err := a.p.BeginDrain(n); err != nil {
			return ScaleDecision{}, err
		}
		dec.Action = "scale-in-begin"
		dec.Store = n.Name
		dec.Reason = "manual scale-in"
		a.phase = scaleDraining
		a.drainStore = n
		a.drainRetries = 0
	}
	a.decisions = append(a.decisions, dec)
	if dec.Action != "scale-in-begin" {
		return dec, fmt.Errorf("core: scale-in: %s: %w", dec.Reason, ErrNoFeasiblePlacement)
	}
	return dec, nil
}
