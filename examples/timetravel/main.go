// Time travel: debugging with checkpoints, history bisection, and
// record/replay (§4).
//
// Aurora keeps a short execution history as incremental checkpoints.
// When an invariant breaks, the developer bisects the history to the
// epoch where it first failed, restores it, and — with the bounded
// record/replay log — deterministically replays the final inputs
// leading up to the failure.
//
//	go run ./examples/timetravel
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"aurora/internal/core"
	"aurora/internal/kernel"
	"aurora/internal/objstore"
	"aurora/internal/rr"
	"aurora/internal/storage"
	"aurora/internal/vm"
)

// account simulates a service with a bug: it applies transactions to a
// balance, and a rare input drives the balance negative (the broken
// invariant).
type account struct{ base vm.Addr }

func (a *account) ProgName() string { return "account" }
func (a *account) Snapshot() []byte {
	e := kernel.NewEncoder()
	e.U64(uint64(a.base))
	return e.Bytes()
}
func (a *account) Step(*kernel.Kernel, *kernel.Process, *kernel.Thread) error { return nil }

func init() {
	kernel.RegisterProgram("account", func(k *kernel.Kernel, p *kernel.Process, state []byte) (kernel.Program, error) {
		d := kernel.NewDecoder(state)
		return &account{base: vm.Addr(d.U64())}, nil
	})
}

func balance(p *kernel.Process) int64 {
	var b [8]byte
	p.ReadMem(p.HeapBase(), b[:])
	return int64(binary.LittleEndian.Uint64(b[:]))
}

func apply(p *kernel.Process, delta int64) {
	v := balance(p) + delta
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(v))
	p.WriteMem(p.HeapBase(), b[:])
}

func main() {
	clock := storage.NewClock()
	k := kernel.NewWith(clock, vm.NewPhysMem(0))
	orch := core.NewOrchestrator(k)
	api := core.NewAPI(orch)
	objs := objstore.Create(storage.NewOptaneArray(4, clock), clock)

	p, err := k.Spawn(0, "account-service")
	if err != nil {
		log.Fatal(err)
	}
	p.SetProgram(&account{base: p.HeapBase()})
	apply(p, 100) // opening balance

	g, _ := orch.Persist("account", p)
	orch.Attach(g, core.NewStoreBackend(objs, k.Mem, clock))
	rec := rr.NewRecorder(api, g)
	live := &rr.LiveSource{R: rec}

	// Production traffic: transactions arrive; Aurora checkpoints
	// periodically, bounding the record log. Transaction #13 is the
	// one that breaks the invariant.
	txAt := func(i int) int64 {
		if i == 13 {
			return -500 // the buggy input
		}
		return int64(5 + i%7)
	}
	// The corruption at tx 13 goes unnoticed; a later checkpoint
	// captures the already-bad state, and the service finally trips
	// over it at tx 17.
	var lastEpoch uint64
	for i := 0; i < 17; i++ {
		data, _ := live.Input(rr.EvSocketData, func() []byte {
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], uint64(txAt(i)))
			return b[:]
		})
		delta := int64(binary.LittleEndian.Uint64(data))
		apply(p, delta)
		if i%4 == 3 {
			bd, err := rec.Checkpoint(p)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("tx %2d: balance %5d — checkpoint epoch %d (record log reset)\n",
				i, balance(p), bd.Epoch)
			lastEpoch = bd.Epoch
		} else {
			fmt.Printf("tx %2d: balance %5d\n", i, balance(p))
		}
	}
	fmt.Printf("\n*** tx 17 trips over the invariant: balance is %d ***\n\n", balance(p))

	// Checkpoints flush in the background; drain the pipeline so the
	// object store holds the full execution history before bisecting.
	if err := orch.Sync(g); err != nil {
		log.Fatal(err)
	}

	// Bisect the history: restore each epoch and test the invariant.
	fmt.Println("bisecting checkpoint history for the first bad epoch:")
	history := objs.Manifests(g.ID)
	lo, hi := 0, len(history)-1
	firstBad := -1
	for lo <= hi {
		mid := (lo + hi) / 2
		epoch := history[mid].Epoch
		ng, _, err := orch.Restore(g, epoch, core.RestoreOpts{Lazy: true})
		if err != nil {
			log.Fatal(err)
		}
		np, _ := k.Process(ng.PIDs()[0])
		bal := balance(np)
		ok := bal >= 0
		fmt.Printf("  epoch %d: balance %5d — %v\n", epoch, bal, map[bool]string{true: "ok", false: "BAD"}[ok])
		// Clean up the probe instance.
		k.Exit(np, 0)
		k.Reap(np)
		orch.Unpersist(ng)
		if ok {
			lo = mid + 1
		} else {
			firstBad = mid
			hi = mid - 1
		}
	}
	if firstBad == -1 {
		fmt.Println("  violation happened after the last checkpoint")
	} else {
		fmt.Printf("  first bad epoch: %d — the bug struck in the four transactions before it\n",
			history[firstBad].Epoch)
	}

	// Record/replay: restore the last checkpoint and replay the
	// bounded log to witness the final moments before the crash
	// deterministically — the paper's production-debugging flow.
	fmt.Printf("\nreplaying the last %d recorded inputs from epoch %d:\n", rec.LogLen(), lastEpoch)
	ng, _, err := orch.Restore(g, lastEpoch, core.RestoreOpts{Lazy: true})
	if err != nil {
		log.Fatal(err)
	}
	np, _ := k.Process(ng.PIDs()[0])
	replay := &rr.ReplaySource{R: rr.NewReplayer(rec.TailLog())}
	for {
		data, err := replay.Input(rr.EvSocketData, nil)
		if err != nil {
			break
		}
		delta := int64(binary.LittleEndian.Uint64(data))
		apply(np, delta)
		fmt.Printf("  replayed tx: delta %5d -> balance %5d\n", delta, balance(np))
	}
	fmt.Printf("\nbisect isolated the bug to epochs %d-%d; replay reproduced the tail. timetravel OK\n",
		history[max(firstBad-1, 0)].Epoch, history[max(firstBad, 0)].Epoch)
}
