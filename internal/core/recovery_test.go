package core

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"aurora/internal/kernel"
	"aurora/internal/objstore"
	"aurora/internal/storage"
	"aurora/internal/vm"
)

// --- Crash-at-every-op recovery harness -------------------------------
//
// One instrumented reference run records, via the fault device's op
// log with data capture, the exact bytes every write landed on media.
// Crashing at op N is then equivalent to a fresh device holding the
// effects of the logged writes with op number <= N: the harness
// replays that prefix incrementally and cold-boots a whole machine
// from it — objstore.Open, manifest discovery, restore — asserting
// that every single crash point recovers to at least the last durable
// epoch, bit-identical to that epoch's captured state. A torn-prefix
// variant additionally lands the first half of the next write,
// modeling a power cut mid-write, before booting.

// syncMark records the device-op frontier of one durable epoch.
type syncMark struct {
	op    int64 // fd.OpCount() right after store.Sync returned
	epoch uint64
	val   uint64
}

// lastDurableAt returns the newest epoch whose full durability barrier
// completed at or before op n — the epoch recovery must reach at
// minimum when crashing right after op n.
func lastDurableAt(marks []syncMark, n int64) uint64 {
	var ep uint64
	for _, m := range marks {
		if m.op <= n {
			ep = m.epoch
		}
	}
	return ep
}

func TestRecoveryCrashAtEveryOp(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			crashAtEveryOp(t, seed, 100)
		})
	}
}

func crashAtEveryOp(t *testing.T, seed int64, ckpts int) {
	t.Helper()
	// --- Instrumented reference run ---
	clock := storage.NewClock()
	fd := storage.NewFaultDevice(storage.NewMemDevice(storage.ParamsOptaneNVMe, clock), clock,
		storage.FaultConfig{Seed: seed})
	fd.SetLogging(true)
	fd.SetDataLogging(true)

	k := kernel.NewWith(clock, vm.NewPhysMem(0))
	o := NewOrchestrator(k)
	o.FlushWorkers = 1 // deterministic device-op ordering
	store := objstore.Create(fd, clock)
	sb := NewStoreBackend(store, k.Mem, clock)

	p, err := k.Spawn(0, "counter")
	if err != nil {
		t.Fatal(err)
	}
	p.SetProgram(&counter{addr: p.HeapBase()})
	g, err := o.Persist("app", p)
	if err != nil {
		t.Fatal(err)
	}
	o.Attach(g, sb)

	var marks []syncMark
	vals := make(map[uint64]uint64)
	for i := 0; i < ckpts; i++ {
		k.Run(2)
		if _, err := o.Checkpoint(g, CheckpointOpts{}); err != nil {
			t.Fatalf("checkpoint %d: %v", i+1, err)
		}
		v := counterValue(p)
		if err := o.Sync(g); err != nil {
			t.Fatalf("sync %d: %v", i+1, err)
		}
		if err := store.Sync(); err != nil {
			t.Fatalf("store sync %d: %v", i+1, err)
		}
		marks = append(marks, syncMark{op: fd.OpCount(), epoch: g.Durable(), val: v})
		vals[g.Durable()] = v
	}
	groupID := g.ID
	log := fd.Log()
	maxOp := fd.OpCount()

	// --- Crash at every op index ---
	// Media state only changes at write ops; crashing between two
	// writes boots the identical device, so each distinct media state
	// is booted once while every op index is still accounted for.
	replayClock := storage.NewClock()
	media := storage.NewMemDevice(storage.ParamsOptaneNVMe, replayClock)
	li := 0
	boots := 0
	for n := int64(0); n <= maxOp; n++ {
		changed := n == 0
		for li < len(log) && log[li].N <= n {
			if log[li].Data != nil {
				if _, err := media.WriteAt(log[li].Data, log[li].Off); err != nil {
					t.Fatal(err)
				}
				changed = true
			}
			li++
		}
		if !changed && n != maxOp {
			continue
		}
		boots++
		assertRecoversTo(t, media, replayClock, groupID, lastDurableAt(marks, n), vals, n, false)

		// Torn-prefix variant: a power cut midway through the next
		// write. The next loop iteration overwrites the prefix with
		// the full buffer, so the shared media converges again.
		if li < len(log) && log[li].Data != nil && len(log[li].Data) > 1 {
			cut := len(log[li].Data) / 2
			if _, err := media.WriteAt(log[li].Data[:cut], log[li].Off); err != nil {
				t.Fatal(err)
			}
			assertRecoversTo(t, media, replayClock, groupID, lastDurableAt(marks, n), vals, n, true)
		}
	}
	if boots < ckpts {
		t.Fatalf("harness booted only %d times for %d checkpoints", boots, ckpts)
	}
	if len(vals) < ckpts {
		t.Fatalf("only %d distinct durable epochs recorded", len(vals))
	}
}

// assertRecoversTo cold-boots a machine from the media state and
// checks the recovery contract: the restored epoch is at least the
// last durable one, and the restored memory is bit-identical to what
// that epoch captured.
func assertRecoversTo(t *testing.T, dev storage.Device, clock *storage.Clock, groupID, lower uint64, vals map[uint64]uint64, n int64, torn bool) {
	t.Helper()
	k := kernel.NewWith(clock, vm.NewPhysMem(0))
	o := NewOrchestrator(k)
	store, err := objstore.Open(dev, clock)
	if err != nil {
		if lower != 0 {
			t.Fatalf("crash at op %d (torn=%v): store unmountable though epoch %d was durable: %v", n, torn, lower, err)
		}
		return
	}
	sb := NewStoreBackend(store, k.Mem, clock)
	img, readTime, err := sb.Load(groupID, 0)
	if err != nil {
		if lower != 0 {
			t.Fatalf("crash at op %d (torn=%v): no image though epoch %d was durable: %v", n, torn, lower, err)
		}
		return
	}
	if img.Epoch < lower {
		t.Fatalf("crash at op %d (torn=%v): recovered epoch %d < durable %d", n, torn, img.Epoch, lower)
	}
	want, ok := vals[img.Epoch]
	if !ok {
		t.Fatalf("crash at op %d (torn=%v): recovered unknown epoch %d", n, torn, img.Epoch)
	}
	ng, _, err := o.RestoreImage(img, readTime, RestoreOpts{})
	if err != nil {
		t.Fatalf("crash at op %d (torn=%v): restore of epoch %d: %v", n, torn, img.Epoch, err)
	}
	np, err := k.Process(ng.PIDs()[0])
	if err != nil {
		t.Fatal(err)
	}
	if got := counterValue(np); got != want {
		t.Fatalf("crash at op %d (torn=%v): epoch %d restored counter %d, want %d — not bit-identical", n, torn, img.Epoch, got, want)
	}
}

// --- Lazy paging failover ---------------------------------------------

// dataPages is the number of extra patterned heap pages the failover
// workload writes beyond the counter page.
const dataPages = 6

func patternPage(page int, seed int64) []byte {
	b := make([]byte, vm.PageSize)
	for i := range b {
		b[i] = byte(int64(page)*31 + int64(i)*7 + seed)
	}
	return b
}

// failoverWorkload runs a counter plus several patterned data pages
// through n checkpoints on a faultRig, returning the group.
func failoverWorkload(t *testing.T, fr *faultRig, n int, seed int64) (*Group, *kernel.Process) {
	t.Helper()
	p, err := fr.k.Spawn(0, "counter")
	if err != nil {
		t.Fatal(err)
	}
	p.SetProgram(&counter{addr: p.HeapBase()})
	for pg := 1; pg <= dataPages; pg++ {
		if err := p.WriteMem(p.HeapBase()+vm.Addr(pg*vm.PageSize), patternPage(pg, seed)); err != nil {
			t.Fatal(err)
		}
	}
	g, err := fr.o.Persist("app", p)
	if err != nil {
		t.Fatal(err)
	}
	fr.o.Attach(g, fr.primary)
	fr.o.Attach(g, fr.secondary)
	for i := 0; i < n; i++ {
		fr.k.Run(2)
		if _, err := fr.o.Checkpoint(g, CheckpointOpts{}); err != nil {
			t.Fatalf("checkpoint %d: %v", i+1, err)
		}
	}
	if err := fr.o.Sync(g); err != nil {
		t.Fatal(err)
	}
	return g, p
}

// readHeapPages demand-pages every data page (and the counter page) of
// the restored process, returning their contents.
func readHeapPages(t *testing.T, p *kernel.Process) [][]byte {
	t.Helper()
	out := make([][]byte, dataPages+1)
	for pg := 0; pg <= dataPages; pg++ {
		buf := make([]byte, vm.PageSize)
		if err := p.ReadMem(p.HeapBase()+vm.Addr(pg*vm.PageSize), buf); err != nil {
			t.Fatalf("demand-paging page %d: %v", pg, err)
		}
		out[pg] = buf
	}
	return out
}

// TestRecoveryLazyFailover is the ISSUE acceptance scenario: a lazy
// restore whose primary store goes down mid-demand-paging completes by
// failing every remaining page over to the healthy peer backend, and
// the result is bit-identical to an eager, fault-free restore.
func TestRecoveryLazyFailover(t *testing.T) {
	const ckpts = 20
	for _, seed := range []int64{1, 7, 42} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			// Eager fault-free reference.
			ref := newFaultRig(seed, 0)
			gRef, _ := failoverWorkload(t, ref, ckpts, seed)
			ngRef, _, err := ref.o.Restore(gRef, 0, RestoreOpts{})
			if err != nil {
				t.Fatal(err)
			}
			refProc, _ := ref.k.Process(ngRef.PIDs()[0])
			refPages := readHeapPages(t, refProc)

			// Lazy restore; primary dies before demand paging starts.
			fr := newFaultRig(seed, 0)
			g, orig := failoverWorkload(t, fr, ckpts, seed)
			fr.k.Exit(orig, 0) // only the restored incarnation runs on
			ng, bd, err := fr.o.Restore(g, 0, RestoreOpts{Lazy: true})
			if err != nil {
				t.Fatal(err)
			}
			if !bd.Lazy {
				t.Fatal("restore was not lazy")
			}
			fr.fd.Down()

			np, _ := fr.k.Process(ng.PIDs()[0])
			gotPages := readHeapPages(t, np)
			for pg := range refPages {
				if !bytes.Equal(gotPages[pg], refPages[pg]) {
					t.Fatalf("page %d differs from eager fault-free restore", pg)
				}
			}
			stats := ng.RecoveryStats()
			if stats.Failovers == 0 {
				t.Fatal("no page failed over to the peer")
			}
			// The application keeps running against the peer-served state.
			before := counterValue(np)
			fr.k.Run(10)
			if got := counterValue(np); got != before+10 {
				t.Fatalf("counter after failover run = %d, want %d", got, before+10)
			}
		})
	}
}

// TestRecoveryLazyFailoverRepairsPrimary: when the primary is only
// degraded (transient read faults), peer-served pages are written back
// onto it, so the fault heals the primary instead of abandoning it.
func TestRecoveryLazyFailoverRepairsPrimary(t *testing.T) {
	const ckpts = 10
	fr := newFaultRig(7, 0)
	g, _ := failoverWorkload(t, fr, ckpts, 7)

	// All reads on the primary fail from now on — but the device is
	// not down, so read-repair writes can land.
	ng, _, err := fr.o.Restore(g, 0, RestoreOpts{Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	fr.fd.FailOps(storage.FaultRead, fr.fd.OpCount()+1, fr.fd.OpCount()+1_000_000)

	np, _ := fr.k.Process(ng.PIDs()[0])
	readHeapPages(t, np)
	stats := ng.RecoveryStats()
	if stats.Failovers == 0 {
		t.Fatal("no failover under read faults")
	}
	if stats.PagesRepaired == 0 {
		t.Fatal("peer pages were not written back to the primary")
	}
	if stats.Retries == 0 {
		t.Fatal("primary was not retried before failover")
	}
}

// --- Supervisor -------------------------------------------------------

// crasher is a counter that crashes once: the `armed` fuse is runtime
// state deliberately NOT captured in Snapshot, so the restored
// incarnation runs clean — a heisencrash the SLS recovers from.
type crasher struct {
	addr  vm.Addr
	fuse  int // crash after this many incarnation-local steps
	steps int
	armed bool
}

func (c *crasher) ProgName() string { return "crasher" }
func (c *crasher) Snapshot() []byte {
	e := kernel.NewEncoder()
	e.U64(uint64(c.addr))
	e.I64(int64(c.fuse))
	return e.Bytes()
}
func (c *crasher) Step(k *kernel.Kernel, p *kernel.Process, t *kernel.Thread) error {
	c.steps++
	if c.armed && c.steps >= c.fuse {
		return fmt.Errorf("crasher: synthetic fault at step %d", c.steps)
	}
	return (&counter{addr: c.addr}).Step(k, p, t)
}

// hardCrasher crashes whenever the persisted counter reaches its
// limit: restored state re-crashes deterministically — a crash loop.
type hardCrasher struct {
	addr  vm.Addr
	limit uint64
}

func (c *hardCrasher) ProgName() string { return "hardcrasher" }
func (c *hardCrasher) Snapshot() []byte {
	e := kernel.NewEncoder()
	e.U64(uint64(c.addr))
	e.U64(c.limit)
	return e.Bytes()
}
func (c *hardCrasher) Step(k *kernel.Kernel, p *kernel.Process, t *kernel.Thread) error {
	if err := (&counter{addr: c.addr}).Step(k, p, t); err != nil {
		return err
	}
	if counterValue(p) >= c.limit {
		return fmt.Errorf("hardcrasher: counter hit %d", c.limit)
	}
	return nil
}

func init() {
	kernel.RegisterProgram("crasher", func(k *kernel.Kernel, p *kernel.Process, state []byte) (kernel.Program, error) {
		d := kernel.NewDecoder(state)
		return &crasher{addr: vm.Addr(d.U64()), fuse: int(d.I64()), armed: false}, nil
	})
	kernel.RegisterProgram("hardcrasher", func(k *kernel.Kernel, p *kernel.Process, state []byte) (kernel.Program, error) {
		d := kernel.NewDecoder(state)
		return &hardCrasher{addr: vm.Addr(d.U64()), limit: d.U64()}, nil
	})
}

// TestRecoverySupervisorRestoresCrash: a watched group whose process
// dies is auto-restored from the last durable epoch and runs on.
func TestRecoverySupervisorRestoresCrash(t *testing.T) {
	r := newRig(t)
	p, err := r.k.Spawn(0, "app")
	if err != nil {
		t.Fatal(err)
	}
	p.SetProgram(&crasher{addr: p.HeapBase(), fuse: 20, armed: true})
	g, err := r.o.Persist("app", p)
	if err != nil {
		t.Fatal(err)
	}
	r.o.Attach(g, r.store)

	r.k.Run(10)
	if _, err := r.o.Checkpoint(g, CheckpointOpts{}); err != nil {
		t.Fatal(err)
	}
	if err := r.o.Sync(g); err != nil {
		t.Fatal(err)
	}
	ckptVal := counterValue(p)

	sup := NewSupervisor(r.o, SupervisorConfig{})
	sup.Watch(g)
	if evs := sup.Poll(); len(evs) != 0 {
		t.Fatalf("healthy group produced events: %v", evs)
	}

	// Run into the crash.
	r.k.Run(30)
	if p.State() != kernel.ProcZombie || p.ExitCode == 0 {
		t.Fatalf("process did not crash: state=%v code=%d", p.State(), p.ExitCode)
	}

	evs := sup.Poll()
	if len(evs) != 1 || evs[0].Err != nil || evs[0].NewGroup == 0 {
		t.Fatalf("recovery events = %+v", evs)
	}
	ng, err := r.o.Group(evs[0].NewGroup)
	if err != nil {
		t.Fatal(err)
	}
	np, err := r.k.Process(ng.PIDs()[0])
	if err != nil {
		t.Fatal(err)
	}
	if got := counterValue(np); got != ckptVal {
		t.Fatalf("restored counter = %d, want checkpoint's %d", got, ckptVal)
	}
	// The restored incarnation is disarmed (the fuse was runtime
	// state): it runs past the old crash point.
	r.k.Run(40)
	if np.State() == kernel.ProcZombie {
		t.Fatal("restored process crashed again")
	}
	if got := counterValue(np); got != ckptVal+40 {
		t.Fatalf("restored counter after run = %d, want %d", got, ckptVal+40)
	}
	// The watch followed the group: old ID gone, new ID supervised.
	ids := sup.Watched()
	if len(ids) != 1 || ids[0] != ng.ID {
		t.Fatalf("watched = %v, want [%d]", ids, ng.ID)
	}
}

// TestRecoverySupervisorCrashLoop: a group whose persisted state
// deterministically re-crashes exhausts its restart budget and is
// given up on instead of restarting forever.
func TestRecoverySupervisorCrashLoop(t *testing.T) {
	r := newRig(t)
	p, err := r.k.Spawn(0, "doomed")
	if err != nil {
		t.Fatal(err)
	}
	p.SetProgram(&hardCrasher{addr: p.HeapBase(), limit: 15})
	g, err := r.o.Persist("doomed", p)
	if err != nil {
		t.Fatal(err)
	}
	r.o.Attach(g, r.store)

	r.k.Run(10)
	if _, err := r.o.Checkpoint(g, CheckpointOpts{}); err != nil {
		t.Fatal(err)
	}
	if err := r.o.Sync(g); err != nil {
		t.Fatal(err)
	}

	const budget = 3
	// A wide window so the budget never refills mid-test.
	sup := NewSupervisor(r.o, SupervisorConfig{MaxRestarts: budget, Window: time.Hour})
	sup.Watch(g)

	restarts := 0
	var gaveUp bool
	for i := 0; i < budget+3 && !gaveUp; i++ {
		r.k.Run(50) // run into the (re-)crash
		for _, ev := range sup.Poll() {
			if ev.GaveUp {
				gaveUp = true
			} else if ev.Err == nil {
				restarts++
			}
		}
	}
	if !gaveUp {
		t.Fatalf("crash loop was never given up on (restarts=%d)", restarts)
	}
	if restarts != budget {
		t.Fatalf("restarts before giving up = %d, want %d", restarts, budget)
	}
	if len(sup.Watched()) != 0 {
		t.Fatalf("crash-looped group still watched: %v", sup.Watched())
	}
}
