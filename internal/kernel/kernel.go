// Package kernel implements the simulated POSIX operating system that
// Aurora checkpoints: processes, threads, file descriptors, pipes,
// Unix-domain sockets and socket pairs, System V shared memory and
// message queues, process groups and containers, and a cooperative
// scheduler.
//
// The package follows the paper's central design rule: every POSIX
// primitive is a first-class kernel object with a stable object ID
// (OID), its own serialization code, and a registered restore
// function. The SLS orchestrator (internal/core) checkpoints a
// persistence group by snapshotting the object graph reachable from
// its processes, never by scraping state through a syscall boundary —
// that scraping approach is what internal/criu implements as the
// comparison baseline.
package kernel

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"aurora/internal/storage"
	"aurora/internal/vm"
)

// Errors returned by kernel operations.
var (
	ErrNoSuchProcess = errors.New("kernel: no such process")
	ErrBadFD         = errors.New("kernel: bad file descriptor")
	ErrNotRunning    = errors.New("kernel: process not running")
	ErrWouldBlock    = errors.New("kernel: operation would block")
	ErrClosedPipe    = errors.New("kernel: broken pipe")
	ErrNoSuchObject  = errors.New("kernel: no such object")
	ErrExists        = errors.New("kernel: object already exists")
)

// Kind identifies the type of a kernel object in serialized images.
type Kind uint16

// Object kinds. These values are part of the checkpoint format.
const (
	KindProcess Kind = iota + 1
	KindThread
	KindVMSpace
	KindVMObject
	KindFDTable
	KindPipe
	KindSocketPair
	KindUnixSocket
	KindSysVShm
	KindSysVMsgQueue
	KindFileDesc
	KindContainer
	KindPGroup
	KindSession
	KindNTLog
	KindSockEnd
)

// String names the kind for diagnostics and the ps command.
func (k Kind) String() string {
	switch k {
	case KindProcess:
		return "proc"
	case KindThread:
		return "thread"
	case KindVMSpace:
		return "vmspace"
	case KindVMObject:
		return "vmobject"
	case KindFDTable:
		return "fdtable"
	case KindPipe:
		return "pipe"
	case KindSocketPair:
		return "socketpair"
	case KindUnixSocket:
		return "unixsock"
	case KindSysVShm:
		return "sysvshm"
	case KindSysVMsgQueue:
		return "sysvmsgq"
	case KindFileDesc:
		return "filedesc"
	case KindContainer:
		return "container"
	case KindPGroup:
		return "pgroup"
	case KindSession:
		return "session"
	case KindNTLog:
		return "ntlog"
	case KindSockEnd:
		return "sockend"
	default:
		return fmt.Sprintf("kind%d", uint16(k))
	}
}

// Object is the interface every first-class kernel object implements:
// a stable identity plus self-serialization. Restores go through the
// per-kind functions the orchestrator registers.
type Object interface {
	OID() uint64
	Kind() Kind
	// EncodeTo appends the object's full metadata (not bulk memory
	// contents — those travel as data pages) to the encoder.
	EncodeTo(e *Encoder)
}

// GroupResolver lets the kernel ask which persistence group a process
// belongs to, and which checkpoint epoch that group is currently in.
// It is implemented by the SLS orchestrator; a nil resolver means no
// process is persisted.
type GroupResolver interface {
	// GroupOf returns the persistence group of pid (0 = none).
	GroupOf(pid int) uint64
	// EpochOf returns the group's current checkpoint epoch.
	EpochOf(group uint64) uint64
	// Released reports whether the given epoch of the group has been
	// made durable (external consistency can deliver its output).
	Released(group, epoch uint64) bool
}

// Kernel is one simulated machine: clock, memory, devices, process
// table, IPC registries.
type Kernel struct {
	Clock *storage.Clock
	Costs storage.CostModel
	Mem   *vm.PhysMem
	Meter *vm.Meter
	Pager *vm.Pager

	mu        sync.Mutex
	oids      uint64
	pids      int
	procs     map[int]*Process
	objects   map[uint64]Object // all live first-class objects by OID
	shm       map[int]*SysVShm  // SysV shm by key
	msgq      map[int]*SysVMsgQueue
	uds       map[string]*UnixSocket // bound unix sockets by path
	fileRefs  map[uint64]int32       // open-file reference counts by OID
	conts     map[int]*Container
	contNext  int
	resolver  GroupResolver
	runQueue  []*Thread
	stopCount atomic.Int64 // processes currently stopped at a barrier
}

// New boots a simulated kernel with unbounded memory on a fresh clock.
func New() *Kernel {
	clock := storage.NewClock()
	return NewWith(clock, vm.NewPhysMem(0))
}

// NewWith boots a kernel on an existing clock and frame allocator.
func NewWith(clock *storage.Clock, mem *vm.PhysMem) *Kernel {
	k := &Kernel{
		Clock:    clock,
		Costs:    storage.DefaultCosts,
		Mem:      mem,
		procs:    make(map[int]*Process),
		objects:  make(map[uint64]Object),
		shm:      make(map[int]*SysVShm),
		msgq:     make(map[int]*SysVMsgQueue),
		uds:      make(map[string]*UnixSocket),
		fileRefs: make(map[uint64]int32),
		conts:    make(map[int]*Container),
	}
	k.Meter = vm.NewMeter(clock)
	k.contNext = 1
	// Container 0 is the host.
	host := &Container{oid: k.NextOID(), ID: 0, Name: "host"}
	k.conts[0] = host
	k.objects[host.oid] = host
	return k
}

// AttachSwap configures the pager on a swap device.
func (k *Kernel) AttachSwap(dev storage.Device) {
	k.Pager = vm.NewPager(k.Mem, vm.NewSwap(dev), k.Meter)
}

// SetResolver installs the orchestrator's group resolver.
func (k *Kernel) SetResolver(r GroupResolver) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.resolver = r
}

// NextOID allocates a fresh object ID.
func (k *Kernel) NextOID() uint64 { return atomic.AddUint64(&k.oids, 1) }

// register records a live object in the OID table.
func (k *Kernel) register(o Object) {
	k.mu.Lock()
	k.objects[o.OID()] = o
	k.mu.Unlock()
}

// unregister drops an object from the OID table.
func (k *Kernel) unregister(oid uint64) {
	k.mu.Lock()
	delete(k.objects, oid)
	k.mu.Unlock()
}

// refFile takes an open-file reference. Descriptions created by
// Install or restore hold one reference each; dup and fork share the
// description rather than taking new file references.
func (k *Kernel) refFile(f OpenFile) {
	if f == nil {
		return
	}
	k.mu.Lock()
	k.fileRefs[f.OID()]++
	k.mu.Unlock()
}

// releaseFile drops an open-file reference, closing the file when the
// last reference is gone.
func (k *Kernel) releaseFile(f OpenFile) error {
	if f == nil {
		return nil
	}
	k.mu.Lock()
	k.fileRefs[f.OID()]--
	n := k.fileRefs[f.OID()]
	if n <= 0 {
		delete(k.fileRefs, f.OID())
	}
	k.mu.Unlock()
	if n <= 0 {
		return f.CloseFile()
	}
	return nil
}

// Lookup finds a live object by OID.
func (k *Kernel) Lookup(oid uint64) (Object, bool) {
	k.mu.Lock()
	defer k.mu.Unlock()
	o, ok := k.objects[oid]
	return o, ok
}

// Process returns the process with the given pid.
func (k *Kernel) Process(pid int) (*Process, error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	p, ok := k.procs[pid]
	if !ok {
		return nil, ErrNoSuchProcess
	}
	return p, nil
}

// Processes returns a snapshot of all live processes.
func (k *Kernel) Processes() []*Process {
	k.mu.Lock()
	defer k.mu.Unlock()
	out := make([]*Process, 0, len(k.procs))
	for _, p := range k.procs {
		out = append(out, p)
	}
	return out
}

// resolverSnapshot returns the current resolver.
func (k *Kernel) resolverSnapshot() GroupResolver {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.resolver
}

// groupOf returns the persistence group of a process (0 = untracked).
func (k *Kernel) groupOf(p *Process) uint64 {
	r := k.resolverSnapshot()
	if r == nil || p == nil {
		return 0
	}
	return r.GroupOf(p.PID)
}

// epochOf returns the current checkpoint epoch of a group.
func (k *Kernel) epochOf(group uint64) uint64 {
	r := k.resolverSnapshot()
	if r == nil {
		return 0
	}
	return r.EpochOf(group)
}

// released reports whether (group, epoch) is durable.
func (k *Kernel) released(group, epoch uint64) bool {
	r := k.resolverSnapshot()
	if r == nil {
		return true
	}
	return r.Released(group, epoch)
}

// Container is an OS container: a named set of processes with its own
// persistence group, mirroring the paper's per-container persistence.
type Container struct {
	oid  uint64
	ID   int
	Name string
}

// OID implements Object.
func (c *Container) OID() uint64 { return c.oid }

// Kind implements Object.
func (c *Container) Kind() Kind { return KindContainer }

// EncodeTo implements Object.
func (c *Container) EncodeTo(e *Encoder) {
	e.U64(c.oid)
	e.I64(int64(c.ID))
	e.Str(c.Name)
}

// NewContainer creates a container.
func (k *Kernel) NewContainer(name string) *Container {
	k.mu.Lock()
	defer k.mu.Unlock()
	c := &Container{oid: k.nextOIDLocked(), ID: k.contNext, Name: name}
	k.contNext++
	k.conts[c.ID] = c
	k.objects[c.oid] = c
	return c
}

func (k *Kernel) nextOIDLocked() uint64 {
	k.oids++
	return k.oids
}

// Container returns a container by ID.
func (k *Kernel) Container(id int) (*Container, bool) {
	k.mu.Lock()
	defer k.mu.Unlock()
	c, ok := k.conts[id]
	return c, ok
}

// restoreContainer reinstates a container object from a checkpoint.
func (k *Kernel) restoreContainer(d *Decoder) (*Container, error) {
	c := &Container{oid: d.U64(), ID: int(d.I64()), Name: d.Str()}
	if err := d.Finish("container"); err != nil {
		return nil, err
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	if existing, ok := k.conts[c.ID]; ok {
		return existing, nil
	}
	k.conts[c.ID] = c
	k.objects[c.oid] = c
	if c.ID >= k.contNext {
		k.contNext = c.ID + 1
	}
	return c, nil
}
