package kernel

import "aurora/internal/codec"

// Serialization for kernel objects reuses the shared binary codec.
// The aliases keep kernel's Object interface self-contained while the
// object store and file system share the same wire primitives.
type (
	// Encoder serializes kernel objects into the checkpoint format.
	Encoder = codec.Encoder
	// Decoder reads the checkpoint format back.
	Decoder = codec.Decoder
)

// ErrCorrupt is returned when a serialized object cannot be decoded.
var ErrCorrupt = codec.ErrCorrupt

// NewEncoder returns an empty encoder.
func NewEncoder() *Encoder { return codec.NewEncoder() }

// NewDecoder wraps a buffer for decoding.
func NewDecoder(p []byte) *Decoder { return codec.NewDecoder(p) }
