// Package criu implements a CRIU-style checkpointer as the comparison
// baseline for Aurora. It deliberately reproduces the architecture the
// paper contrasts against:
//
//   - state is scraped at the syscall boundary, one process at a
//     time, rather than captured inside the kernel as first-class
//     objects;
//   - memory is copied eagerly while the application is stopped (no
//     COW, no incremental tracking — every checkpoint copies the
//     whole address space);
//   - images are written synchronously before the application resumes
//     (no external-consistency machinery to make background flushing
//     safe); and
//   - shared resources are duplicated per process (a page shared by N
//     processes is copied and stored N times).
//
// The result is correct but has exactly the overhead profile that
// makes CRIU usable for occasional migration and prohibitive for
// transparent persistence at 100 Hz.
package criu

import (
	"fmt"
	"time"

	"aurora/internal/codec"
	"aurora/internal/kernel"
	"aurora/internal/storage"
	"aurora/internal/vm"
)

// Breakdown reports a CRIU checkpoint's costs.
type Breakdown struct {
	// StopTime covers the whole operation: the application is frozen
	// until the image is on disk.
	StopTime time.Duration
	// MemoryCopy is the eager page-copy portion.
	MemoryCopy time.Duration
	// WriteTime is the synchronous device write.
	WriteTime time.Duration
	// PagesCopied counts copied pages, including duplicates of shared
	// pages.
	PagesCopied int
	// Bytes is the image size on disk.
	Bytes int64
}

// Checkpointer scrapes process trees into image files on a device.
type Checkpointer struct {
	K   *kernel.Kernel
	Dev storage.Device

	nextOff int64
	images  map[int][]imageRef // pid -> checkpoints
}

type imageRef struct {
	off  int64
	size int64
}

// New creates a checkpointer writing to dev.
func New(k *kernel.Kernel, dev storage.Device) *Checkpointer {
	return &Checkpointer{K: k, Dev: dev, images: make(map[int][]imageRef)}
}

// Checkpoint freezes the process tree rooted at p, scrapes each
// process independently, and writes one image per process
// synchronously. The application stays frozen throughout.
func (c *Checkpointer) Checkpoint(p *kernel.Process) (Breakdown, error) {
	tree := c.K.ProcessTree(p)
	clock := c.K.Clock
	costs := c.K.Costs
	var bd Breakdown
	total := clock.Watch()

	for _, proc := range tree {
		c.K.StopProcess(proc)
	}
	defer func() {
		for _, proc := range tree {
			c.K.ResumeProcess(proc)
		}
	}()

	for _, proc := range tree {
		// Scrape at the syscall boundary: walk /proc-style views of
		// the address space, copying every resident page.
		e := codec.NewEncoder()
		e.I64(int64(proc.PID))
		e.Str(proc.Name)
		maps := proc.Space.Mappings()
		e.U64(uint64(len(maps)))

		memSW := clock.Watch()
		for _, m := range maps {
			e.U64(uint64(m.Start))
			e.U64(uint64(m.End))
			e.Str(m.Name)
			// Every resident page is copied while stopped — including
			// pages of objects shared with other processes in the
			// tree, which are copied again for each process.
			pages := m.Obj.ResidentPages()
			e.U64(uint64(len(pages)))
			buf := make([]byte, vm.PageSize)
			for _, idx := range pages {
				f, _ := m.Obj.Lookup(idx)
				if f == nil {
					continue
				}
				copy(buf, f.Data)
				e.I64(idx)
				e.Bytes2(buf)
				bd.PagesCopied++
				clock.Advance(costs.PageCopy)
			}
		}
		// Descriptor scraping: numbers and kinds only; reconstructing
		// the objects behind them is the receiving side's problem
		// (this asymmetry is why CRIU's unix socket support took
		// seven years).
		nums := proc.FDs.Numbers()
		e.U64(uint64(len(nums)))
		for _, n := range nums {
			fd, _ := proc.FDs.Get(n)
			e.I64(int64(n))
			e.U64(uint64(fd.File.Kind()))
		}
		bd.MemoryCopy += memSW.Elapsed()

		// Synchronous write: the process stays frozen until the image
		// is durable.
		img := e.Bytes()
		wSW := clock.Watch()
		if _, err := c.Dev.WriteAt(img, c.nextOff); err != nil {
			return bd, fmt.Errorf("criu: writing image: %w", err)
		}
		if _, err := c.Dev.Sync(); err != nil {
			return bd, err
		}
		bd.WriteTime += wSW.Elapsed()
		c.images[proc.PID] = append(c.images[proc.PID], imageRef{off: c.nextOff, size: int64(len(img))})
		c.nextOff += int64(len(img)) + vm.PageSize
		bd.Bytes += int64(len(img))
	}
	bd.StopTime = total.Elapsed()
	return bd, nil
}

// ImageCount reports checkpoints stored for a pid.
func (c *Checkpointer) ImageCount(pid int) int { return len(c.images[pid]) }

// ImageBytes reports the total bytes stored for a pid.
func (c *Checkpointer) ImageBytes(pid int) int64 {
	var n int64
	for _, ref := range c.images[pid] {
		n += ref.size
	}
	return n
}

// Restore rebuilds the newest image of pid as a fresh process. Only
// private anonymous memory is reconstructed — exactly the fidelity gap
// the paper criticizes: IPC objects, shared-memory relationships and
// kernel state do not round-trip through a syscall-boundary scrape.
func (c *Checkpointer) Restore(pid int, container int) (*kernel.Process, error) {
	refs := c.images[pid]
	if len(refs) == 0 {
		return nil, fmt.Errorf("criu: no image for pid %d", pid)
	}
	ref := refs[len(refs)-1]
	buf := make([]byte, ref.size)
	if _, err := c.Dev.ReadAt(buf, ref.off); err != nil {
		return nil, err
	}
	d := codec.NewDecoder(buf)
	d.I64() // pid
	name := d.Str()
	p, err := c.K.Spawn(container, name)
	if err != nil {
		return nil, err
	}
	nMaps := d.U64()
	for i := uint64(0); i < nMaps && d.Err() == nil; i++ {
		start := vm.Addr(d.U64())
		end := vm.Addr(d.U64())
		mname := d.Str()
		// Reuse the spawned layout where ranges collide; otherwise map.
		if p.Space.Find(start) == nil {
			obj := vm.NewObject(mname, int64(end-start))
			if _, err := p.Space.Map(start, int64(end-start), vm.ProtRead|vm.ProtWrite, obj, 0, false, mname); err != nil {
				return nil, err
			}
		}
		nPages := d.U64()
		for j := uint64(0); j < nPages && d.Err() == nil; j++ {
			idx := d.I64()
			data := d.Bytes2()
			if err := p.WriteMem(start+vm.Addr(idx<<vm.PageShift), data); err != nil {
				return nil, err
			}
			c.K.Clock.Advance(c.K.Costs.PageCopy)
		}
	}
	if err := d.Finish("criu image"); err != nil {
		return nil, err
	}
	return p, nil
}
