package kernel

import (
	"bytes"
	"testing"
	"testing/quick"

	"aurora/internal/storage"
	"aurora/internal/vm"
)

func TestSpawnBasics(t *testing.T) {
	k := New()
	p, err := k.Spawn(0, "init", "arg1")
	if err != nil {
		t.Fatal(err)
	}
	if p.PID != 1 {
		t.Fatalf("first pid = %d", p.PID)
	}
	if len(p.Threads) != 1 {
		t.Fatalf("threads = %d", len(p.Threads))
	}
	if p.State() != ProcRunning {
		t.Fatalf("state = %v", p.State())
	}
	if got, err := k.Process(1); err != nil || got != p {
		t.Fatalf("Process(1) = %v, %v", got, err)
	}
	if _, err := k.Process(99); err != ErrNoSuchProcess {
		t.Fatalf("Process(99) err = %v", err)
	}
}

func TestSpawnBadContainer(t *testing.T) {
	k := New()
	if _, err := k.Spawn(42, "x"); err == nil {
		t.Fatal("spawn into missing container should fail")
	}
}

func TestProcessMemory(t *testing.T) {
	k := New()
	p, _ := k.Spawn(0, "app")
	data := []byte("persistent state")
	if err := p.WriteMem(p.HeapBase(), data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := p.ReadMem(p.HeapBase(), got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("heap read %q", got)
	}
}

func TestSbrk(t *testing.T) {
	k := New()
	p, _ := k.Spawn(0, "app")
	old, err := p.Sbrk(4 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if old != p.HeapBase() {
		t.Fatalf("initial brk = %#x, want heap base %#x", old, p.HeapBase())
	}
	// Memory in the grown region is usable.
	addr := p.HeapBase() + vm.Addr(3<<20)
	if err := p.WriteMem(addr, []byte("grown")); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Sbrk(-(100 << 20)); err == nil {
		t.Fatal("shrinking below heap base should fail")
	}
}

func TestForkSemantics(t *testing.T) {
	k := New()
	parent, _ := k.Spawn(0, "app")
	parent.WriteMem(parent.HeapBase(), []byte("shared-before-fork"))

	child, err := k.Fork(parent)
	if err != nil {
		t.Fatal(err)
	}
	if child.PPID != parent.PID {
		t.Fatalf("child ppid = %d", child.PPID)
	}
	// Child sees pre-fork data.
	got := make([]byte, 18)
	child.ReadMem(child.HeapBase(), got)
	if string(got) != "shared-before-fork" {
		t.Fatalf("child heap = %q", got)
	}
	// Writes are private in both directions.
	child.WriteMem(child.HeapBase(), []byte("child-write-here  "))
	parent.ReadMem(parent.HeapBase(), got)
	if string(got) != "shared-before-fork" {
		t.Fatalf("parent sees child write: %q", got)
	}
	parent.WriteMem(parent.HeapBase(), []byte("parent-write-here "))
	child.ReadMem(child.HeapBase(), got)
	if string(got) != "child-write-here  " {
		t.Fatalf("child sees parent write: %q", got)
	}
	// Process tree includes the child.
	tree := k.ProcessTree(parent)
	if len(tree) != 2 {
		t.Fatalf("tree size = %d", len(tree))
	}
}

func TestExitReap(t *testing.T) {
	k := New()
	p, _ := k.Spawn(0, "app")
	k.Exit(p, 3)
	if p.State() != ProcZombie || p.ExitCode != 3 {
		t.Fatalf("state=%v code=%d", p.State(), p.ExitCode)
	}
	if err := k.Reap(p); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Process(p.PID); err != ErrNoSuchProcess {
		t.Fatal("reaped process still in table")
	}
	if err := k.Reap(p); err != ErrNotRunning {
		t.Fatalf("double reap err = %v", err)
	}
}

func TestPipeRoundTrip(t *testing.T) {
	k := New()
	p, _ := k.Spawn(0, "app")
	r, w, err := k.NewPipe(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Write(p, w, []byte("through the pipe")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 32)
	n, err := k.Read(p, r, buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:n]) != "through the pipe" {
		t.Fatalf("read %q", buf[:n])
	}
	// Empty pipe would block.
	if _, err := k.Read(p, r, buf); err != ErrWouldBlock {
		t.Fatalf("empty read err = %v", err)
	}
	// Role enforcement.
	if _, err := k.Read(p, w, buf); err != ErrBadFD {
		t.Fatalf("read from write end err = %v", err)
	}
	if _, err := k.Write(p, r, []byte("x")); err != ErrBadFD {
		t.Fatalf("write to read end err = %v", err)
	}
}

func TestPipeEOFAfterClose(t *testing.T) {
	k := New()
	p, _ := k.Spawn(0, "app")
	r, w, _ := k.NewPipe(p)
	k.Write(p, w, []byte("tail"))
	p.FDs.Close(w)
	fd, _ := p.FDs.Get(r)
	pipe := fd.File.(*Pipe)
	pipe.q.close()

	buf := make([]byte, 16)
	n, err := k.Read(p, r, buf)
	if err != nil || string(buf[:n]) != "tail" {
		t.Fatalf("drain = %q, %v", buf[:n], err)
	}
	if _, err := k.Read(p, r, buf); !IsEOF(err) {
		t.Fatalf("err = %v, want EOF", err)
	}
}

func TestSocketPair(t *testing.T) {
	k := New()
	p, _ := k.Spawn(0, "app")
	a, b, err := k.NewSocketPair(p)
	if err != nil {
		t.Fatal(err)
	}
	k.Write(p, a, []byte("ping"))
	buf := make([]byte, 8)
	n, _ := k.Read(p, b, buf)
	if string(buf[:n]) != "ping" {
		t.Fatalf("b read %q", buf[:n])
	}
	k.Write(p, b, []byte("pong"))
	n, _ = k.Read(p, a, buf)
	if string(buf[:n]) != "pong" {
		t.Fatalf("a read %q", buf[:n])
	}
}

func TestUnixSocketListenConnectAccept(t *testing.T) {
	k := New()
	srv, _ := k.Spawn(0, "server")
	cli, _ := k.Spawn(0, "client")

	lfd, err := k.Listen(srv, "/tmp/app.sock")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Listen(srv, "/tmp/app.sock"); err != ErrExists {
		t.Fatalf("double bind err = %v", err)
	}
	if _, err := k.Accept(srv, lfd); err != ErrWouldBlock {
		t.Fatalf("accept with no backlog err = %v", err)
	}

	cfd, err := k.Connect(cli, "/tmp/app.sock")
	if err != nil {
		t.Fatal(err)
	}
	sfd, err := k.Accept(srv, lfd)
	if err != nil {
		t.Fatal(err)
	}

	k.Write(cli, cfd, []byte("hello server"))
	buf := make([]byte, 32)
	n, _ := k.Read(srv, sfd, buf)
	if string(buf[:n]) != "hello server" {
		t.Fatalf("server read %q", buf[:n])
	}

	if _, err := k.Connect(cli, "/nope"); err != ErrNoSuchObject {
		t.Fatalf("connect to unbound err = %v", err)
	}
}

func TestDupSharesDescription(t *testing.T) {
	k := New()
	p, _ := k.Spawn(0, "app")
	r, w, _ := k.NewPipe(p)
	w2, err := p.FDs.Dup(w)
	if err != nil {
		t.Fatal(err)
	}
	k.Write(p, w2, []byte("via dup"))
	buf := make([]byte, 16)
	n, _ := k.Read(p, r, buf)
	if string(buf[:n]) != "via dup" {
		t.Fatalf("read %q", buf[:n])
	}
	// Closing one of two dup'd descriptors keeps the file open.
	if err := p.FDs.Close(w); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Write(p, w2, []byte("still open")); err != nil {
		t.Fatalf("write after sibling close: %v", err)
	}
}

func TestFDTableCloneAcrossFork(t *testing.T) {
	k := New()
	parent, _ := k.Spawn(0, "app")
	r, w, _ := k.NewPipe(parent)
	child, _ := k.Fork(parent)
	// Child writes; parent reads: descriptors survived the fork.
	if _, err := k.Write(child, w, []byte("from child")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	n, _ := k.Read(parent, r, buf)
	if string(buf[:n]) != "from child" {
		t.Fatalf("parent read %q", buf[:n])
	}
}

func TestSysVShmSharing(t *testing.T) {
	k := New()
	p1, _ := k.Spawn(0, "a")
	p2, _ := k.Spawn(0, "b")
	seg, err := k.ShmGet(1234, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	if again, _ := k.ShmGet(1234, 1); again != seg {
		t.Fatal("ShmGet with same key returned a different segment")
	}
	a1, err := k.ShmAttach(p1, seg)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := k.ShmAttach(p2, seg)
	if err != nil {
		t.Fatal(err)
	}
	p1.WriteMem(a1+100, []byte("cross-process"))
	got := make([]byte, 13)
	p2.ReadMem(a2+100, got)
	if string(got) != "cross-process" {
		t.Fatalf("p2 read %q", got)
	}
	if err := k.ShmDetach(p1, a1, seg); err != nil {
		t.Fatal(err)
	}
	if err := k.ShmRemove(1234); err != nil {
		t.Fatal(err)
	}
	if err := k.ShmRemove(1234); err != ErrNoSuchObject {
		t.Fatalf("double remove err = %v", err)
	}
}

func TestSysVMsgQueue(t *testing.T) {
	k := New()
	q := k.MsgGet(7)
	q.Send(1, []byte("first"))
	q.Send(2, []byte("second"))
	q.Send(1, []byte("third"))

	m, err := q.Recv(2)
	if err != nil || string(m.Data) != "second" {
		t.Fatalf("typed recv = %q, %v", m.Data, err)
	}
	m, _ = q.Recv(0)
	if string(m.Data) != "first" {
		t.Fatalf("any recv = %q", m.Data)
	}
	if q.Len() != 1 {
		t.Fatalf("len = %d", q.Len())
	}
	q.Recv(0)
	if _, err := q.Recv(0); err != ErrWouldBlock {
		t.Fatalf("empty recv err = %v", err)
	}
}

func TestContainerIsolationOfProcesses(t *testing.T) {
	k := New()
	c := k.NewContainer("web")
	k.Spawn(0, "hostproc")
	k.Spawn(c.ID, "webproc1")
	k.Spawn(c.ID, "webproc2")
	if got := len(k.ContainerProcesses(c.ID)); got != 2 {
		t.Fatalf("container procs = %d", got)
	}
	if got := len(k.ContainerProcesses(0)); got != 1 {
		t.Fatalf("host procs = %d", got)
	}
}

// --- scheduler ---

func TestSchedulerRoundRobin(t *testing.T) {
	k := New()
	counts := map[int]int{}
	for i := 0; i < 3; i++ {
		p, _ := k.Spawn(0, "worker")
		pid := p.PID
		p.SetProgram(&FuncProgram{Name: "worker", Fn: func(k *Kernel, p *Process, t *Thread) error {
			counts[pid]++
			return nil
		}})
	}
	if _, err := k.Run(30); err != nil {
		t.Fatal(err)
	}
	for pid, c := range counts {
		if c != 10 {
			t.Fatalf("pid %d ran %d quanta, want 10", pid, c)
		}
	}
}

func TestSchedulerSkipsStopped(t *testing.T) {
	k := New()
	p, _ := k.Spawn(0, "w")
	runs := 0
	p.SetProgram(&FuncProgram{Name: "w", Fn: func(*Kernel, *Process, *Thread) error {
		runs++
		return nil
	}})
	k.StopProcess(p)
	if n, _ := k.Run(5); n != 0 {
		t.Fatalf("ran %d quanta while stopped", n)
	}
	k.ResumeProcess(p)
	k.Run(5)
	if runs != 5 {
		t.Fatalf("runs after resume = %d", runs)
	}
}

func TestThreadExitZombifiesProcess(t *testing.T) {
	k := New()
	p, _ := k.Spawn(0, "oneshot")
	p.SetProgram(&FuncProgram{Name: "oneshot", Fn: func(*Kernel, *Process, *Thread) error {
		return ErrThreadExit
	}})
	k.Run(10)
	if p.State() != ProcZombie {
		t.Fatalf("state = %v, want zombie", p.State())
	}
}

func TestStopCountTracking(t *testing.T) {
	k := New()
	p1, _ := k.Spawn(0, "a")
	p2, _ := k.Spawn(0, "b")
	k.StopProcess(p1)
	k.StopProcess(p2)
	k.StopProcess(p2) // idempotent
	if k.StoppedCount() != 2 {
		t.Fatalf("stopped = %d", k.StoppedCount())
	}
	k.ResumeProcess(p1)
	k.ResumeProcess(p2)
	if k.StoppedCount() != 0 {
		t.Fatalf("stopped after resume = %d", k.StoppedCount())
	}
}

// --- external consistency ---

// stubResolver simulates the orchestrator's group bookkeeping.
type stubResolver struct {
	groups   map[int]uint64
	epochs   map[uint64]uint64
	released map[[2]uint64]bool
}

func (r *stubResolver) GroupOf(pid int) uint64 { return r.groups[pid] }
func (r *stubResolver) EpochOf(g uint64) uint64 {
	return r.epochs[g]
}
func (r *stubResolver) Released(g, e uint64) bool { return r.released[[2]uint64{g, e}] }

func TestExternalConsistencyGatesOutput(t *testing.T) {
	k := New()
	srv, _ := k.Spawn(0, "persisted")
	ext, _ := k.Spawn(0, "external")
	a, b, _ := k.NewSocketPair(srv)
	// Move descriptor b to the external process.
	fd, _ := srv.FDs.Get(b)
	extFD, _ := ext.FDs.Install(k, fd.File, ORdWr)
	srv.FDs.Close(b)

	res := &stubResolver{
		groups:   map[int]uint64{srv.PID: 1},
		epochs:   map[uint64]uint64{1: 5},
		released: map[[2]uint64]bool{},
	}
	k.SetResolver(res)

	// Persisted process writes; the external reader must not see the
	// data until epoch 5 is durable.
	if _, err := k.Write(srv, a, []byte("unstable state")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 32)
	if _, err := k.Read(ext, extFD, buf); err != ErrWouldBlock {
		t.Fatalf("gated read err = %v, want would-block", err)
	}

	// Once durable, the data flows.
	res.released[[2]uint64{1, 5}] = true
	n, err := k.Read(ext, extFD, buf)
	if err != nil || string(buf[:n]) != "unstable state" {
		t.Fatalf("post-release read = %q, %v", buf[:n], err)
	}
}

func TestExternalConsistencyIntraGroupUnaffected(t *testing.T) {
	k := New()
	p1, _ := k.Spawn(0, "a")
	p2, _ := k.Spawn(0, "b")
	a, b, _ := k.NewSocketPair(p1)
	fd, _ := p1.FDs.Get(b)
	p2FD, _ := p2.FDs.Install(k, fd.File, ORdWr)
	p1.FDs.Close(b)

	// Both processes are in group 1; nothing is durable yet.
	res := &stubResolver{
		groups:   map[int]uint64{p1.PID: 1, p2.PID: 1},
		epochs:   map[uint64]uint64{1: 9},
		released: map[[2]uint64]bool{},
	}
	k.SetResolver(res)
	k.Write(p1, a, []byte("intra"))
	buf := make([]byte, 8)
	n, err := k.Read(p2, p2FD, buf)
	if err != nil || string(buf[:n]) != "intra" {
		t.Fatalf("intra-group read = %q, %v (must not be gated)", buf[:n], err)
	}
}

func TestFDCtlDisablesGating(t *testing.T) {
	k := New()
	srv, _ := k.Spawn(0, "persisted")
	ext, _ := k.Spawn(0, "external")
	a, b, _ := k.NewSocketPair(srv)
	fd, _ := srv.FDs.Get(b)
	extFD, _ := ext.FDs.Install(k, fd.File, ORdWr)
	srv.FDs.Close(b)

	res := &stubResolver{
		groups:   map[int]uint64{srv.PID: 1},
		epochs:   map[uint64]uint64{1: 2},
		released: map[[2]uint64]bool{},
	}
	k.SetResolver(res)

	// sls_fdctl(fd, off): the developer accepts the risk for latency.
	if err := k.FDCtl(srv, a, false); err != nil {
		t.Fatal(err)
	}
	k.Write(srv, a, []byte("fast path"))
	buf := make([]byte, 16)
	n, err := k.Read(ext, extFD, buf)
	if err != nil || string(buf[:n]) != "fast path" {
		t.Fatalf("ungated read = %q, %v", buf[:n], err)
	}
}

// --- serialization ---

func TestEncoderDecoderRoundTrip(t *testing.T) {
	e := NewEncoder()
	e.U64(12345678901234)
	e.I64(-42)
	e.U32(7)
	e.U16(65535)
	e.U8(9)
	e.Bool(true)
	e.Bool(false)
	e.Str("hello")
	e.Bytes2([]byte{1, 2, 3})
	e.StrSlice([]string{"a", "bb"})
	e.U64Slice([]uint64{5, 6, 7})

	d := NewDecoder(e.Bytes())
	if d.U64() != 12345678901234 || d.I64() != -42 || d.U32() != 7 ||
		d.U16() != 65535 || d.U8() != 9 || !d.Bool() || d.Bool() {
		t.Fatal("scalar round trip failed")
	}
	if d.Str() != "hello" || !bytes.Equal(d.Bytes2(), []byte{1, 2, 3}) {
		t.Fatal("bytes round trip failed")
	}
	ss := d.StrSlice()
	if len(ss) != 2 || ss[0] != "a" || ss[1] != "bb" {
		t.Fatal("string slice round trip failed")
	}
	us := d.U64Slice()
	if len(us) != 3 || us[2] != 7 {
		t.Fatal("u64 slice round trip failed")
	}
	if d.Remaining() != 0 || d.Err() != nil {
		t.Fatalf("remaining=%d err=%v", d.Remaining(), d.Err())
	}
}

func TestDecoderCorruption(t *testing.T) {
	d := NewDecoder([]byte{0xff}) // truncated varint
	d.U64()
	if d.Err() == nil {
		t.Fatal("truncated varint not detected")
	}
	if err := d.Finish("thing"); err == nil {
		t.Fatal("Finish should report the error")
	}
	// Oversized length prefix.
	e := NewEncoder()
	e.U64(1 << 40)
	d2 := NewDecoder(e.Bytes())
	if d2.Bytes2() != nil || d2.Err() == nil {
		t.Fatal("oversized length not detected")
	}
}

func TestQuickEncoderRoundTrip(t *testing.T) {
	f := func(a uint64, b int64, s string, p []byte, ss []string) bool {
		e := NewEncoder()
		e.U64(a)
		e.I64(b)
		e.Str(s)
		e.Bytes2(p)
		e.StrSlice(ss)
		d := NewDecoder(e.Bytes())
		if d.U64() != a || d.I64() != b || d.Str() != s {
			return false
		}
		if !bytes.Equal(d.Bytes2(), p) {
			return false
		}
		got := d.StrSlice()
		if len(got) != len(ss) {
			return false
		}
		for i := range ss {
			if got[i] != ss[i] {
				return false
			}
		}
		return d.Err() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestProcessSerializationRoundTrip(t *testing.T) {
	k := New()
	p, _ := k.Spawn(0, "redis-server", "--port", "6379")
	p.Env = []string{"HOME=/"}
	p.WriteMem(p.HeapBase(), []byte("heapdata"))
	p.Threads[0].Regs.PC = 0xdeadbeef
	p.Threads[0].Regs.GPR[5] = 42

	e := NewEncoder()
	p.EncodeTo(e)
	pi, err := DecodeProcess(e.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if pi.PID != p.PID || pi.Name != "redis-server" || len(pi.Args) != 2 {
		t.Fatalf("image = %+v", pi)
	}
	if len(pi.Mappings) != 2 {
		t.Fatalf("mappings = %d, want 2 (stack+heap)", len(pi.Mappings))
	}

	te := NewEncoder()
	p.Threads[0].EncodeTo(te)
	th, err := DecodeThreadImage(te.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if th.Regs.PC != 0xdeadbeef || th.Regs.GPR[5] != 42 {
		t.Fatalf("thread regs = %+v", th.Regs)
	}
}

func TestPipeSerializationPreservesBufferedData(t *testing.T) {
	k := New()
	p, _ := k.Spawn(0, "app")
	_, w, _ := k.NewPipe(p)
	k.Write(p, w, []byte("in flight"))

	fd, _ := p.FDs.Get(w)
	pipe := fd.File.(*Pipe)
	e := NewEncoder()
	pipe.EncodeTo(e)

	k2 := New()
	restored, err := k2.RestorePipe(e.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := k2.Spawn(0, "app")
	rfd, _ := p2.FDs.Install(k2, restored, ORdOnly)
	buf := make([]byte, 16)
	n, err := k2.Read(p2, rfd, buf)
	if err != nil || string(buf[:n]) != "in flight" {
		t.Fatalf("restored pipe read = %q, %v", buf[:n], err)
	}
}

func TestSocketPairSerializationBothDirections(t *testing.T) {
	k := New()
	p, _ := k.Spawn(0, "app")
	a, b, _ := k.NewSocketPair(p)
	k.Write(p, a, []byte("a->b"))
	k.Write(p, b, []byte("b->a"))

	fdA, _ := p.FDs.Get(a)
	sp := fdA.File.(*SockEnd).parent.(*SocketPair)
	e := NewEncoder()
	sp.EncodeTo(e)

	k2 := New()
	sp2, err := k2.RestoreSocketPair(e.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := k2.Spawn(0, "app")
	fa, _ := p2.FDs.Install(k2, sp2.Ends()[0], ORdWr)
	fb, _ := p2.FDs.Install(k2, sp2.Ends()[1], ORdWr)
	buf := make([]byte, 8)
	n, _ := k2.Read(p2, fb, buf)
	if string(buf[:n]) != "a->b" {
		t.Fatalf("direction ab = %q", buf[:n])
	}
	n, _ = k2.Read(p2, fa, buf)
	if string(buf[:n]) != "b->a" {
		t.Fatalf("direction ba = %q", buf[:n])
	}
}

func TestMsgQueueSerialization(t *testing.T) {
	k := New()
	q := k.MsgGet(11)
	q.Send(4, []byte("msg-a"))
	q.Send(5, []byte("msg-b"))
	e := NewEncoder()
	q.EncodeTo(e)

	k2 := New()
	q2, err := k2.RestoreMsgQueue(e.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if q2.Len() != 2 || q2.Key != 11 {
		t.Fatalf("restored queue len=%d key=%d", q2.Len(), q2.Key)
	}
	m, _ := q2.Recv(5)
	if string(m.Data) != "msg-b" {
		t.Fatalf("restored msg = %q", m.Data)
	}
}

func TestKindString(t *testing.T) {
	kinds := []Kind{KindProcess, KindThread, KindVMObject, KindPipe,
		KindSocketPair, KindUnixSocket, KindSysVShm, KindSysVMsgQueue,
		KindFDTable, KindFileDesc, KindContainer, KindVMSpace,
		KindPGroup, KindSession, KindNTLog, Kind(200)}
	for _, kd := range kinds {
		if kd.String() == "" {
			t.Fatalf("kind %d has empty name", kd)
		}
	}
}

func TestSwapIntegrationUnderMemoryPressure(t *testing.T) {
	clock := storage.NewClock()
	k := NewWith(clock, vm.NewPhysMem(0))
	k.AttachSwap(storage.NewMemDevice(storage.ParamsOptaneNVMe, clock))
	p, _ := k.Spawn(0, "bigapp")
	p.Sbrk(1 << 20)
	payload := make([]byte, 1<<20)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	if err := p.WriteMem(p.HeapBase(), payload); err != nil {
		t.Fatal(err)
	}
	// Evict half the heap.
	n, err := k.Pager.Reclaim(128)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("nothing reclaimed")
	}
	// ReadMem services the swap faults transparently.
	got := make([]byte, 1<<20)
	if err := p.ReadMem(p.HeapBase(), got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("data corrupted through swap")
	}
}

func TestSetpgidSetsid(t *testing.T) {
	k := New()
	leader, _ := k.Spawn(0, "leader")
	child, _ := k.Fork(leader)
	if child.PGID != leader.PGID {
		t.Fatal("fork did not inherit the process group")
	}
	child.Setpgid(0)
	if child.PGID != child.PID {
		t.Fatalf("setpgid(0) pgid = %d", child.PGID)
	}
	sid := child.Setsid()
	if sid != child.PID || child.SID != child.PID {
		t.Fatalf("setsid = %d, sid = %d", sid, child.SID)
	}
	// Session/group identity round-trips through serialization.
	e := NewEncoder()
	child.EncodeTo(e)
	pi, err := DecodeProcess(e.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if pi.PGID != child.PID || pi.SID != child.PID {
		t.Fatalf("serialized pgid/sid = %d/%d", pi.PGID, pi.SID)
	}
}
