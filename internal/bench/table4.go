package bench

import (
	"fmt"

	"aurora/internal/apps/faas"
	"aurora/internal/core"
	"aurora/internal/storage"
)

// Table4Result is the restore-time breakdown of Table 4: a Redis
// instance restored from an in-memory image, and a serverless
// workload restored from memory and from disk.
type Table4Result struct {
	WorkingSet     int64
	RedisMem       core.RestoreBreakdown
	ServerlessMem  core.RestoreBreakdown
	ServerlessDisk core.RestoreBreakdown
}

// Table4 reproduces Table 4.
func Table4(wsBytes int64) (*Table4Result, error) {
	out := &Table4Result{WorkingSet: wsBytes}

	// --- Redis restored from an in-memory image ---
	m := NewMachine()
	ri, err := NewRedisInstance(m, wsBytes)
	if err != nil {
		return nil, err
	}
	m.O.Attach(ri.Group, m.Mem)
	if _, err := m.O.Checkpoint(ri.Group, core.CheckpointOpts{}); err != nil {
		return nil, err
	}
	// Checkpoint returns at resume; wait for the background flush so the
	// memory backend holds the image before we load it back.
	if err := m.O.Sync(ri.Group); err != nil {
		return nil, err
	}
	img, _, err := m.Mem.Load(ri.Group.ID, 0)
	if err != nil {
		return nil, err
	}
	_, out.RedisMem, err = m.O.RestoreImage(img, 0, core.RestoreOpts{Lazy: true})
	if err != nil {
		return nil, err
	}

	// --- Serverless workload: hello-world function runtime ---
	fm := NewMachine()
	rt := faas.NewRuntime(fm.O, fm.Store, fm.Mem)
	if _, err := rt.BuildBase(); err != nil {
		return nil, err
	}
	fn, err := rt.Deploy("hello", []byte("bench"))
	if err != nil {
		return nil, err
	}
	// From memory.
	fimg, _, err := fm.Mem.Load(fn.Group.ID, 0)
	if err != nil {
		return nil, err
	}
	_, out.ServerlessMem, err = fm.O.RestoreImage(fimg, 0, core.RestoreOpts{Lazy: true})
	if err != nil {
		return nil, err
	}
	// From disk (the object store read appears).
	dimg, readTime, err := fm.Store.Load(fn.Group.ID, 0)
	if err != nil {
		return nil, err
	}
	_, out.ServerlessDisk, err = fm.O.RestoreImage(dimg, readTime, core.RestoreOpts{Lazy: true})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Print renders the result like the paper's Table 4.
func (r *Table4Result) Print() {
	fmt.Printf("Table 4: restore time, Redis working set %s + serverless function\n", fmtBytes(r.WorkingSet))
	fmt.Printf("  %-20s %14s %14s %14s\n", "Restore", "Redis", "Serverless", "Serverless")
	fmt.Printf("  %-20s %14s %14s %14s\n", "Backend", "Memory", "Memory", "Disk")
	osr := func(b core.RestoreBreakdown) string {
		if b.ObjectStoreRead == 0 {
			return "N/A"
		}
		return storage.Micros(b.ObjectStoreRead)
	}
	fmt.Printf("  %-20s %14s %14s %14s\n", "Object Store Read",
		osr(r.RedisMem), osr(r.ServerlessMem), osr(r.ServerlessDisk))
	fmt.Printf("  %-20s %14s %14s %14s\n", "Memory state",
		storage.Micros(r.RedisMem.MemoryState), storage.Micros(r.ServerlessMem.MemoryState), storage.Micros(r.ServerlessDisk.MemoryState))
	fmt.Printf("  %-20s %14s %14s %14s\n", "Metadata state",
		storage.Micros(r.RedisMem.MetadataState), storage.Micros(r.ServerlessMem.MetadataState), storage.Micros(r.ServerlessDisk.MetadataState))
	fmt.Printf("  %-20s %14s %14s %14s\n\n", "Total latency",
		storage.Micros(r.RedisMem.Total), storage.Micros(r.ServerlessMem.Total), storage.Micros(r.ServerlessDisk.Total))
}
