package objstore

import (
	"fmt"
	"sort"
)

// BlockSource supplies known-good block contents by hash during scrub
// repair. A *Store is itself a BlockSource: because dedup keys are
// content hashes, any peer backend of the same group holds bit-
// identical blocks under the same hashes and can heal another store's
// rot.
type BlockSource interface {
	FetchBlock(h Hash) ([]byte, bool)
}

// FetchBlock returns the verified contents of the block with the given
// hash, or false if this store does not hold it intact.
func (s *Store) FetchBlock(h Hash) ([]byte, bool) {
	s.mu.Lock()
	be, ok := s.blocks[h]
	s.mu.Unlock()
	if !ok {
		return nil, false
	}
	buf := make([]byte, BlockSize)
	if _, err := s.dev.ReadAt(buf, be.ref.Off); err != nil {
		return nil, false
	}
	if s.HashPage(buf) != h {
		return nil, false
	}
	return buf, true
}

// ScrubReport summarizes one scrub pass.
type ScrubReport struct {
	Blocks   int // blocks examined
	Corrupt  int // blocks whose contents failed their hash
	Repaired int // corrupt blocks rewritten from the source
	Lost     int // corrupt blocks with no good copy anywhere
	// LostRecords lists the records referencing unrepairable blocks —
	// the checkpoints that can no longer restore from this store.
	LostRecords []RecordKey
}

func (r *ScrubReport) String() string {
	return fmt.Sprintf("%d blocks, %d corrupt, %d repaired, %d lost",
		r.Blocks, r.Corrupt, r.Repaired, r.Lost)
}

// Scrub walks every live block, verifies its contents against its
// content hash, and repairs rotted blocks in place from src (which may
// be nil, or a peer store holding the same content-addressed blocks).
// Unrepairable blocks are reported along with the records that
// reference them. The device error of a failed raw read aborts the
// pass; rot itself never does.
func (s *Store) Scrub(src BlockSource) (*ScrubReport, error) {
	s.mu.Lock()
	refs := make([]BlockRef, 0, len(s.blocks))
	for _, be := range s.blocks {
		refs = append(refs, be.ref)
	}
	s.mu.Unlock()
	sort.Slice(refs, func(i, j int) bool { return refs[i].Off < refs[j].Off })

	rep := &ScrubReport{Blocks: len(refs)}
	buf := make([]byte, BlockSize)
	for _, ref := range refs {
		if _, err := s.dev.ReadAt(buf, ref.Off); err != nil {
			return rep, fmt.Errorf("objstore: scrub read at %d: %w", ref.Off, err)
		}
		if s.HashPage(buf) == ref.Hash {
			continue
		}
		rep.Corrupt++
		if src != nil {
			if good, ok := src.FetchBlock(ref.Hash); ok {
				if _, err := s.dev.WriteAt(good, ref.Off); err == nil {
					rep.Repaired++
					continue
				}
			}
		}
		rep.Lost++
		rep.LostRecords = append(rep.LostRecords, s.recordsReferencing(ref.Hash)...)
	}
	sort.Slice(rep.LostRecords, func(i, j int) bool {
		a, b := rep.LostRecords[i], rep.LostRecords[j]
		if a.OID != b.OID {
			return a.OID < b.OID
		}
		return a.Epoch < b.Epoch
	})
	return rep, nil
}

// recordsReferencing returns the keys of all records holding a page
// backed by the given block.
func (s *Store) recordsReferencing(h Hash) []RecordKey {
	s.mu.Lock()
	defer s.mu.Unlock()
	var keys []RecordKey
	for key, rec := range s.records {
		for _, ref := range rec.Pages {
			if ref.Hash == h {
				keys = append(keys, key)
				break
			}
		}
	}
	return keys
}
