package kernel

import (
	"fmt"

	"aurora/internal/vm"
)

// This file is the kernel half of restore: given decoded object
// images (produced by the orchestrator from a checkpoint), it rebuilds
// live kernel objects and patches the references between them. The
// orchestrator owns the ordering: VM objects first (with their pages),
// then IPC objects, then processes, threads and descriptor tables.

// DecodeProcess parses a serialized process record.
func DecodeProcess(payload []byte) (*ProcImage, error) {
	pi, err := decodeProcImage(NewDecoder(payload))
	if err != nil {
		return nil, err
	}
	return (*ProcImage)(pi), nil
}

// ProcImage is the exported decoded form of a process record.
type ProcImage procImage

// DecodeThreadImage parses a serialized thread record.
func DecodeThreadImage(payload []byte) (*Thread, error) {
	return decodeThread(NewDecoder(payload))
}

// DecodeFDTable parses a serialized descriptor table.
func DecodeFDTable(payload []byte) (*FDTableImage, error) {
	ti, err := decodeFDTableImage(NewDecoder(payload))
	if err != nil {
		return nil, err
	}
	return (*FDTableImage)(ti), nil
}

// FDTableImage is the exported decoded descriptor table.
type FDTableImage fdTableImage

// DecodeFileDesc parses a serialized open-file description.
func DecodeFileDesc(payload []byte) (*FDImage, error) {
	fi, err := decodeFDImage(NewDecoder(payload))
	if err != nil {
		return nil, err
	}
	return (*FDImage)(fi), nil
}

// FDImage is the exported decoded file description.
type FDImage fdImage

// RestorePipe rebuilds a pipe object.
func (k *Kernel) RestorePipe(payload []byte) (*Pipe, error) {
	return k.restorePipe(NewDecoder(payload))
}

// RestoreSocketPair rebuilds a socket pair and its endpoints.
func (k *Kernel) RestoreSocketPair(payload []byte) (*SocketPair, error) {
	return k.restoreSocketPair(NewDecoder(payload))
}

// RestoreUnixSocket rebuilds a bound unix socket; the returned OIDs
// are the backlog connections to patch once their pairs exist.
func (k *Kernel) RestoreUnixSocket(payload []byte) (*UnixSocket, []uint64, error) {
	return k.restoreUnixSocket(NewDecoder(payload))
}

// PatchUnixBacklog reattaches restored backlog connections.
func (k *Kernel) PatchUnixBacklog(u *UnixSocket, refs []uint64) error {
	for _, oid := range refs {
		o, ok := k.Lookup(oid)
		if !ok {
			return fmt.Errorf("kernel: backlog connection %d missing: %w", oid, ErrNoSuchObject)
		}
		sp, ok := o.(*SocketPair)
		if !ok {
			return fmt.Errorf("kernel: backlog OID %d is %s, not socketpair", oid, o.Kind())
		}
		u.mu.Lock()
		u.backlog = append(u.backlog, sp)
		u.mu.Unlock()
	}
	return nil
}

// RestoreShm rebuilds a SysV shared memory segment; lookupObj resolves
// the recorded VM object ID to the restored object.
func (k *Kernel) RestoreShm(payload []byte, lookupObj func(uint64) *vm.Object) (*SysVShm, error) {
	return k.restoreShm(NewDecoder(payload), lookupObj)
}

// RestoreMsgQueue rebuilds a SysV message queue.
func (k *Kernel) RestoreMsgQueue(payload []byte) (*SysVMsgQueue, error) {
	return k.restoreMsgQueue(NewDecoder(payload))
}

// RestoreContainer rebuilds a container record.
func (k *Kernel) RestoreContainer(payload []byte) (*Container, error) {
	return k.restoreContainer(NewDecoder(payload))
}

// RestoreProcess rebuilds a process from its image: a fresh Process
// object with the recorded identity, an address space reassembled
// from the recorded mappings over restored VM objects, and an empty
// descriptor table to be filled by PatchFDTable. Threads are attached
// separately with AttachThread.
//
// lookupObj resolves recorded VM object IDs; returning nil fails the
// restore (a checkpoint referencing a missing object is corrupt).
func (k *Kernel) RestoreProcess(pi *ProcImage, lookupObj func(uint64) *vm.Object) (*Process, error) {
	space := vm.NewAddressSpace(k.Mem, k.Meter)
	p := &Process{
		oid:       k.NextOID(),
		PID:       pi.PID,
		PPID:      pi.PPID,
		PGID:      pi.PGID,
		SID:       pi.SID,
		Container: pi.Container,
		Name:      pi.Name,
		Args:      pi.Args,
		Env:       pi.Env,
		CWD:       pi.CWD,
		ExitCode:  pi.ExitCode,
		state:     ProcStopped, // resumed explicitly after patching
		Space:     space,
		kernel:    k,
	}
	p.FDs = NewFDTable(k.NextOID())

	for _, mi := range pi.Mappings {
		obj := lookupObj(mi.ObjID)
		if obj == nil {
			return nil, fmt.Errorf("kernel: restore pid %d: VM object %d missing: %w",
				pi.PID, mi.ObjID, ErrNoSuchObject)
		}
		m, err := space.Map(vm.Addr(mi.Start), int64(mi.End-mi.Start), vm.Prot(mi.Prot),
			obj, mi.Off, mi.Shared, mi.Name)
		if err != nil {
			return nil, fmt.Errorf("kernel: restore pid %d mapping %s: %w", pi.PID, mi.Name, err)
		}
		m.Restore = vm.RestorePolicy(mi.Restore)
		if mi.Name == "heap" {
			p.heap = m
			p.brk = vm.Addr(pi.Brk)
		}
		if k.Pager != nil {
			k.Pager.Register(obj)
		}
	}

	k.mu.Lock()
	if existing := k.procs[pi.PID]; existing != nil {
		// PID collision with a live process: give the restored process
		// a fresh PID, as Aurora does when cloning an application.
		k.pids++
		p.PID = k.pids
	} else if pi.PID > k.pids {
		k.pids = pi.PID
	}
	k.procs[p.PID] = p
	k.objects[p.oid] = p
	k.objects[p.FDs.oid] = p.FDs
	k.mu.Unlock()

	if k.Pager != nil {
		k.Pager.RegisterSpace(space)
	}
	return p, nil
}

// AttachThread binds a restored thread to its process and schedules it.
func (k *Kernel) AttachThread(p *Process, t *Thread) {
	t.Proc = p
	p.mu.Lock()
	p.Threads = append(p.Threads, t)
	p.mu.Unlock()
	k.mu.Lock()
	k.objects[t.oid] = t
	k.mu.Unlock()
	if t.State == ThreadRunnable {
		k.AddRunnable(t)
	}
}

// PatchFDTable fills a restored process's descriptor table: entries
// maps descriptor numbers to restored FileDescs.
func (k *Kernel) PatchFDTable(p *Process, entries map[int]*FileDesc) {
	for n, fd := range entries {
		p.FDs.restoreInstall(n, fd)
	}
}

// BuildFileDesc materializes a FileDesc from its image, resolving the
// open-file reference among restored objects.
func (k *Kernel) BuildFileDesc(fi *FDImage) (*FileDesc, error) {
	fd := &FileDesc{oid: fi.OID, Flags: fi.Flags, Ext: fi.Ext, Offset: fi.Offset, refs: 1, k: k}
	if fi.FileOID != 0 {
		o, ok := k.Lookup(fi.FileOID)
		if !ok {
			return nil, fmt.Errorf("kernel: file %d for descriptor %d missing: %w",
				fi.FileOID, fi.OID, ErrNoSuchObject)
		}
		f, ok := o.(OpenFile)
		if !ok {
			return nil, fmt.Errorf("kernel: OID %d is %s, not an open file", fi.FileOID, o.Kind())
		}
		fd.File = f
	}
	k.register(fd)
	k.refFile(fd.File)
	return fd, nil
}

// ShareFileDesc bumps the reference count when several descriptor
// numbers restore onto one description.
func ShareFileDesc(fd *FileDesc) *FileDesc {
	fd.refs++
	return fd
}

// ResumeRestored attaches the program driver (via its registered
// factory) and resumes the process.
func (k *Kernel) ResumeRestored(p *Process, progName string, progState []byte) error {
	if progName != "" {
		factory, ok := LookupProgram(progName)
		if !ok {
			return fmt.Errorf("kernel: no program factory registered for %q", progName)
		}
		prog, err := factory(k, p, progState)
		if err != nil {
			return fmt.Errorf("kernel: reattaching program %q: %w", progName, err)
		}
		p.SetProgram(prog)
	}
	p.setState(ProcRunning)
	return nil
}

// BuildFileDescWith materializes a FileDesc around an externally
// resolved open file (e.g. an Aurora file system inode, which lives
// outside the kernel object table).
func (k *Kernel) BuildFileDescWith(fi *FDImage, f OpenFile) *FileDesc {
	fd := &FileDesc{oid: fi.OID, Flags: fi.Flags, Ext: fi.Ext, Offset: fi.Offset, refs: 1, k: k, File: f}
	k.register(fd)
	k.refFile(f)
	return fd
}
